package pht

import (
	"fmt"
	"math/rand"
	"testing"

	"dlpt/internal/dht"
	"dlpt/internal/keys"
	"dlpt/internal/workload"
)

func buildPHT(t *testing.T, peers, d, b int, seed int64) (*PHT, *rand.Rand) {
	t.Helper()
	ring := dht.New()
	for i := 0; i < peers; i++ {
		if _, err := ring.Join(fmt.Sprintf("peer-%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	p, err := New(ring, d, b, rng)
	if err != nil {
		t.Fatal(err)
	}
	return p, rng
}

func TestNewRejectsBadParams(t *testing.T) {
	ring := dht.New()
	_, _ = ring.Join("p0")
	rng := rand.New(rand.NewSource(1))
	if _, err := New(ring, 0, 4, rng); err == nil {
		t.Fatalf("d=0 must fail")
	}
	if _, err := New(ring, 8, 0, rng); err == nil {
		t.Fatalf("b=0 must fail")
	}
}

func TestInsertLookup(t *testing.T) {
	p, _ := buildPHT(t, 16, 32, 4, 2)
	corpus := workload.GridCorpus(60)
	for _, k := range corpus {
		if err := p.Insert(k); err != nil {
			t.Fatalf("insert %q: %v", k, err)
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("invalid PHT: %v", err)
	}
	for _, k := range corpus {
		found, err := p.Lookup(k)
		if err != nil || !found {
			t.Fatalf("Lookup(%q) = %v, %v", k, found, err)
		}
		found, err = p.LookupBinary(k)
		if err != nil || !found {
			t.Fatalf("LookupBinary(%q) = %v, %v", k, found, err)
		}
	}
	if found, _ := p.Lookup("zz_not_there"); found {
		t.Fatalf("absent key must miss")
	}
	if found, _ := p.LookupBinary("zz_not_there"); found {
		t.Fatalf("absent key must miss (binary)")
	}
}

func TestInsertDuplicateIdempotent(t *testing.T) {
	p, _ := buildPHT(t, 4, 32, 4, 3)
	for i := 0; i < 3; i++ {
		if err := p.Insert("dgemm"); err != nil {
			t.Fatal(err)
		}
	}
	ks, err := p.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) != 1 {
		t.Fatalf("Keys = %v", ks)
	}
}

func TestSplitOnOverflow(t *testing.T) {
	p, _ := buildPHT(t, 8, 32, 2, 4)
	// Insert > b keys: forces splits.
	for _, k := range []keys.Key{"aaa", "aab", "aba", "abb", "baa", "bab"} {
		if err := p.Insert(k); err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("after %q: %v", k, err)
		}
	}
	for _, k := range []keys.Key{"aaa", "aab", "aba", "abb", "baa", "bab"} {
		if found, _ := p.Lookup(k); !found {
			t.Fatalf("%q lost after splits", k)
		}
	}
}

func TestMaxDepthOverflowAllowed(t *testing.T) {
	// Keys identical in the first d bits cannot be separated; the
	// deepest leaf is allowed to overflow.
	p, _ := buildPHT(t, 4, 8, 1, 5) // d = 8 bits = 1 byte
	for _, k := range []keys.Key{"same_a", "same_b", "same_c"} {
		if err := p.Insert(k); err != nil {
			t.Fatalf("insert %q: %v", k, err)
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, k := range []keys.Key{"same_a", "same_b", "same_c"} {
		if found, _ := p.Lookup(k); !found {
			t.Fatalf("%q lost", k)
		}
	}
}

func TestDeleteAndMerge(t *testing.T) {
	p, _ := buildPHT(t, 8, 32, 2, 6)
	ks := []keys.Key{"aaa", "aab", "aba", "abb"}
	for _, k := range ks {
		if err := p.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range ks {
		ok, err := p.Delete(k)
		if err != nil || !ok {
			t.Fatalf("Delete(%q) = %v, %v", k, ok, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("after delete %q: %v", k, err)
		}
		if found, _ := p.Lookup(k); found {
			t.Fatalf("%q still present", k)
		}
	}
	if ok, _ := p.Delete("aaa"); ok {
		t.Fatalf("double delete must report false")
	}
	left, err := p.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("keys remain: %v", left)
	}
}

func TestRange(t *testing.T) {
	p, _ := buildPHT(t, 8, 64, 4, 7)
	corpus := []keys.Key{"dgemm", "dgemv", "saxpy", "sgemm", "sgemv", "strsm"}
	for _, k := range corpus {
		if err := p.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	got, err := p.Range("saxpy", "sgemv", 0)
	if err != nil {
		t.Fatal(err)
	}
	want := map[keys.Key]bool{"saxpy": true, "sgemm": true, "sgemv": true}
	if len(got) != len(want) {
		t.Fatalf("Range = %v", got)
	}
	for _, k := range got {
		if !want[k] {
			t.Fatalf("unexpected key %q in range", k)
		}
	}
	if got, _ := p.Range("z", "a", 0); got != nil {
		t.Fatalf("inverted range must be empty")
	}
	if got, _ := p.Range("a", "z", 2); len(got) != 2 {
		t.Fatalf("limit ignored: %v", got)
	}
}

func TestCountersGrow(t *testing.T) {
	p, _ := buildPHT(t, 16, 32, 4, 8)
	before := p.Counters
	if err := p.Insert("dgemm"); err != nil {
		t.Fatal(err)
	}
	if p.Counters.DHTGets <= before.DHTGets {
		t.Fatalf("inserts must perform DHT gets")
	}
	if p.Counters.DHTPuts <= before.DHTPuts {
		t.Fatalf("inserts must perform DHT puts")
	}
	g := p.Counters.DHTGets
	if _, err := p.Lookup("dgemm"); err != nil {
		t.Fatal(err)
	}
	if p.Counters.DHTGets <= g {
		t.Fatalf("lookups must perform DHT gets")
	}
}

// TestBinaryCheaperThanLinear verifies the PHT optimization: binary
// search on the prefix length uses fewer DHT gets than linear descent
// once the trie is deep.
func TestBinaryCheaperThanLinear(t *testing.T) {
	p, _ := buildPHT(t, 16, 64, 2, 9)
	corpus := workload.GridCorpus(120)
	for _, k := range corpus {
		if err := p.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	g0 := p.Counters.DHTGets
	for _, k := range corpus[:40] {
		if _, err := p.Lookup(k); err != nil {
			t.Fatal(err)
		}
	}
	linear := p.Counters.DHTGets - g0
	g1 := p.Counters.DHTGets
	for _, k := range corpus[:40] {
		if _, err := p.LookupBinary(k); err != nil {
			t.Fatal(err)
		}
	}
	binary := p.Counters.DHTGets - g1
	t.Logf("DHT gets for 40 lookups: linear=%d binary=%d", linear, binary)
	if binary >= linear {
		t.Fatalf("binary search (%d gets) must beat linear descent (%d gets)", binary, linear)
	}
}

func TestKeysSortedInEncodedOrder(t *testing.T) {
	p, _ := buildPHT(t, 8, 64, 3, 10)
	corpus := workload.GridCorpus(50)
	for _, k := range corpus {
		if err := p.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	ks, err := p.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) != 50 {
		t.Fatalf("Keys len = %d", len(ks))
	}
	for i := 1; i < len(ks); i++ {
		if keys.Bits(ks[i-1], 64) > keys.Bits(ks[i], 64) {
			t.Fatalf("keys out of encoded order at %d", i)
		}
	}
}

func TestAccessorsAndBits(t *testing.T) {
	p, _ := buildPHT(t, 2, 16, 5, 11)
	if p.D() != 16 || p.B() != 5 {
		t.Fatalf("accessors wrong")
	}
	// keys.Bits sanity: 'a' = 0x61 = 01100001.
	if got := keys.Bits("a", 8); got != "01100001" {
		t.Fatalf("Bits(a,8) = %q", got)
	}
	if got := keys.Bits("a", 12); got != "011000010000" {
		t.Fatalf("Bits must zero-pad: %q", got)
	}
	if got := keys.Bits("", 4); got != "0000" {
		t.Fatalf("Bits(ε) = %q", got)
	}
}
