// Package keys implements the identifier algebra of the DLPT system:
// identifiers are finite strings over a finite digit alphabet A,
// compared lexicographically, with the prefix operations (GCP, proper
// prefixes) of Caron, Desprez and Tedeschi (RR-6557, Section 2) and
// the circular-interval predicates needed by the peer ring.
package keys

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Key is an identifier: a finite sequence of digits over some
// alphabet. The empty key Epsilon is the identity of concatenation
// and the label of the tree root. Keys compare lexicographically by
// byte, which is the total order used both by the prefix tree and by
// the peer ring.
type Key string

// Epsilon is the empty identifier ε.
const Epsilon Key = ""

// Len returns the number of digits of k (|ε| = 0).
func (k Key) Len() int { return len(k) }

// IsEmpty reports whether k is the empty identifier ε.
func (k Key) IsEmpty() bool { return len(k) == 0 }

// Concat returns the concatenation kv.
func (k Key) Concat(v Key) Key { return k + v }

// Compare returns -1, 0 or +1 by lexicographic byte order.
func Compare(a, b Key) int { return strings.Compare(string(a), string(b)) }

// Less reports a < b in lexicographic order.
func Less(a, b Key) bool { return a < b }

// Min returns the smaller of a and b.
func Min(a, b Key) Key {
	if b < a {
		return b
	}
	return a
}

// Max returns the larger of a and b.
func Max(a, b Key) Key {
	if b > a {
		return b
	}
	return a
}

// IsPrefix reports whether p is a prefix of k (p == k counts).
func IsPrefix(p, k Key) bool {
	return len(p) <= len(k) && k[:len(p)] == p
}

// IsProperPrefix reports whether p is a proper prefix of k:
// a prefix with p != k.
func IsProperPrefix(p, k Key) bool {
	return len(p) < len(k) && k[:len(p)] == p
}

// GCP returns the Greatest Common Prefix of a and b: the longest
// identifier prefixing both.
func GCP(a, b Key) Key {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return a[:i]
}

// GCPAll returns the greatest common prefix of all given keys.
// GCPAll() of no keys is ε.
func GCPAll(ks ...Key) Key {
	if len(ks) == 0 {
		return Epsilon
	}
	g := ks[0]
	for _, k := range ks[1:] {
		g = GCP(g, k)
		if g.IsEmpty() {
			return g
		}
	}
	return g
}

// PGCPAll returns the Proper Greatest Common Prefix of the given
// keys: the longest prefix u shared by all of them with u != k for
// every k. The second return value is false when no such prefix
// exists (which happens only when some key equals the GCP itself and
// the GCP cannot be shortened — by convention we then return the GCP
// shortened by one digit, which is still a common proper prefix).
func PGCPAll(ks ...Key) (Key, bool) {
	if len(ks) == 0 {
		return Epsilon, false
	}
	g := GCPAll(ks...)
	for _, k := range ks {
		if k == g {
			// g is not proper for k; the longest proper common
			// prefix is g minus its last digit (if any).
			if g.IsEmpty() {
				return Epsilon, false
			}
			return g[:len(g)-1], true
		}
	}
	return g, true
}

// Prefixes returns the set of identifiers properly prefixing k, from
// ε up to k minus one digit, in increasing length. Prefixes(ε) is
// empty.
func Prefixes(k Key) []Key {
	if k.IsEmpty() {
		return nil
	}
	ps := make([]Key, 0, len(k))
	for i := 0; i < len(k); i++ {
		ps = append(ps, k[:i])
	}
	return ps
}

// HasProperPrefixIn reports whether any element of set is a proper
// prefix of k.
func HasProperPrefixIn(k Key, set []Key) bool {
	for _, p := range set {
		if IsProperPrefix(p, k) {
			return true
		}
	}
	return false
}

// Between reports whether x lies in the open circular interval
// (a, b) of the identifier space. When a == b the interval covers the
// whole space except a. The identifier space is circular: when
// a > b the interval wraps through the minimum.
func Between(x, a, b Key) bool {
	switch {
	case a < b:
		return a < x && x < b
	case a > b:
		return x > a || x < b
	default: // a == b: everything but the point itself
		return x != a
	}
}

// BetweenRightIncl reports whether x lies in the circular interval
// (a, b]. This is the Chord successor test: x is managed by b when
// x ∈ (pred(b), b].
func BetweenRightIncl(x, a, b Key) bool {
	if x == b {
		return true
	}
	return Between(x, a, b)
}

// SortKeys sorts ks in increasing lexicographic order in place.
func SortKeys(ks []Key) {
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
}

// Bits returns the first n bits of k's byte representation as a
// "0"/"1" string, zero-padded beyond the key's end. The encoding is
// order-preserving (bitwise lexicographic order equals byte order for
// equal-length outputs), which is what the binary-trie overlays (PHT,
// P-Grid) route on.
func Bits(k Key, n int) string {
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		byteIdx, bitIdx := i/8, uint(7-i%8)
		var b byte
		if byteIdx < len(k) {
			b = k[byteIdx]
		}
		if b&(1<<bitIdx) != 0 {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	return string(out)
}

// Alphabet is a finite ordered set of digits. Identifiers of a DLPT
// deployment are drawn from one alphabet; the alphabet also provides
// seeded random-identifier generation for peers.
type Alphabet struct {
	digits []rune
	member map[rune]bool
}

// NewAlphabet builds an alphabet from the given digit string. Digits
// must be distinct and non-empty.
func NewAlphabet(digits string) (*Alphabet, error) {
	if digits == "" {
		return nil, fmt.Errorf("keys: empty alphabet")
	}
	a := &Alphabet{member: make(map[rune]bool)}
	for _, r := range digits {
		if a.member[r] {
			return nil, fmt.Errorf("keys: duplicate digit %q in alphabet", r)
		}
		a.member[r] = true
		a.digits = append(a.digits, r)
	}
	sort.Slice(a.digits, func(i, j int) bool { return a.digits[i] < a.digits[j] })
	return a, nil
}

// MustAlphabet is NewAlphabet that panics on error; for package-level
// well-known alphabets.
func MustAlphabet(digits string) *Alphabet {
	a, err := NewAlphabet(digits)
	if err != nil {
		panic(err)
	}
	return a
}

// Well-known alphabets.
var (
	// Binary is the two-digit alphabet {0,1} used by the paper's
	// binary-identifier examples.
	Binary = MustAlphabet("01")
	// LowerAlnum covers the service-name corpora (BLAS, S3L,
	// ScaLAPACK routine names): digits, letters and underscore.
	LowerAlnum = MustAlphabet("0123456789_abcdefghijklmnopqrstuvwxyz")
	// PrintableASCII is the inclusive service-key alphabet used by the
	// public API when none is specified.
	PrintableASCII = MustAlphabet(
		" !\"#$%&'()*+,-./0123456789:;<=>?@" +
			"ABCDEFGHIJKLMNOPQRSTUVWXYZ[\\]^_`" +
			"abcdefghijklmnopqrstuvwxyz{|}~")
)

// Size returns the number of digits |A|.
func (a *Alphabet) Size() int { return len(a.digits) }

// Digits returns a copy of the ordered digit set.
func (a *Alphabet) Digits() []rune {
	out := make([]rune, len(a.digits))
	copy(out, a.digits)
	return out
}

// Contains reports whether r is a digit of the alphabet.
func (a *Alphabet) Contains(r rune) bool { return a.member[r] }

// Valid reports whether every digit of k belongs to the alphabet.
func (a *Alphabet) Valid(k Key) bool {
	for _, r := range string(k) {
		if !a.member[r] {
			return false
		}
	}
	return true
}

// RandomKey returns a uniformly random identifier whose length is
// uniform in [minLen, maxLen] and whose digits are uniform over the
// alphabet, using the caller's generator.
func (a *Alphabet) RandomKey(r *rand.Rand, minLen, maxLen int) Key {
	if minLen < 0 {
		minLen = 0
	}
	if maxLen < minLen {
		maxLen = minLen
	}
	n := minLen
	if maxLen > minLen {
		n += r.Intn(maxLen - minLen + 1)
	}
	var b strings.Builder
	b.Grow(n)
	for i := 0; i < n; i++ {
		b.WriteRune(a.digits[r.Intn(len(a.digits))])
	}
	return Key(b.String())
}
