package keys

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestLenAndEmpty(t *testing.T) {
	if Epsilon.Len() != 0 || !Epsilon.IsEmpty() {
		t.Fatalf("epsilon should be empty with length 0")
	}
	if Key("101").Len() != 3 {
		t.Fatalf("Len(101) = %d, want 3", Key("101").Len())
	}
	if Key("0").IsEmpty() {
		t.Fatalf("\"0\" must not be empty")
	}
}

func TestConcat(t *testing.T) {
	u, v := Key("10"), Key("111")
	if got := u.Concat(v); got != Key("10111") {
		t.Fatalf("Concat = %q, want 10111", got)
	}
	if got := Epsilon.Concat(u); got != u {
		t.Fatalf("εu = %q, want %q", got, u)
	}
	if got := u.Concat(Epsilon); got != u {
		t.Fatalf("uε = %q, want %q", got, u)
	}
}

func TestCompareAndLess(t *testing.T) {
	cases := []struct {
		a, b Key
		want int
	}{
		{"", "", 0},
		{"", "0", -1},
		{"0", "", 1},
		{"10", "101", -1},
		{"101", "10", 1},
		{"101", "101", 0},
		{"100", "101", -1},
		{"2", "10", 1}, // lexicographic, not numeric
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := Less(c.a, c.b); got != (c.want < 0) {
			t.Errorf("Less(%q,%q) = %v, want %v", c.a, c.b, got, c.want < 0)
		}
	}
}

func TestMinMax(t *testing.T) {
	if Min("10", "101") != Key("10") || Max("10", "101") != Key("101") {
		t.Fatalf("Min/Max wrong for 10 vs 101")
	}
	if Min("abc", "abc") != Key("abc") || Max("abc", "abc") != Key("abc") {
		t.Fatalf("Min/Max of equal keys must be the key")
	}
}

func TestIsPrefix(t *testing.T) {
	cases := []struct {
		p, k           Key
		prefix, proper bool
	}{
		{"", "", true, false},
		{"", "101", true, true},
		{"10", "101", true, true},
		{"101", "101", true, false},
		{"1011", "101", false, false},
		{"11", "101", false, false},
	}
	for _, c := range cases {
		if got := IsPrefix(c.p, c.k); got != c.prefix {
			t.Errorf("IsPrefix(%q,%q) = %v, want %v", c.p, c.k, got, c.prefix)
		}
		if got := IsProperPrefix(c.p, c.k); got != c.proper {
			t.Errorf("IsProperPrefix(%q,%q) = %v, want %v", c.p, c.k, got, c.proper)
		}
	}
}

func TestGCPPaperExamples(t *testing.T) {
	// GCP(101, 100) = 10 (Section 3).
	if got := GCP("101", "100"); got != Key("10") {
		t.Fatalf("GCP(101,100) = %q, want 10", got)
	}
	if got := GCP("10101", "10111"); got != Key("101") {
		t.Fatalf("GCP(10101,10111) = %q, want 101", got)
	}
	if got := GCP("abc", "xyz"); got != Epsilon {
		t.Fatalf("GCP(abc,xyz) = %q, want ε", got)
	}
	if got := GCP("abc", "abc"); got != Key("abc") {
		t.Fatalf("GCP(abc,abc) = %q, want abc", got)
	}
}

func TestGCPAll(t *testing.T) {
	if got := GCPAll(); got != Epsilon {
		t.Fatalf("GCPAll() = %q, want ε", got)
	}
	if got := GCPAll("10101"); got != Key("10101") {
		t.Fatalf("GCPAll(single) = %q", got)
	}
	if got := GCPAll("10101", "10111", "101111"); got != Key("101") {
		t.Fatalf("GCPAll = %q, want 101", got)
	}
	if got := GCPAll("0", "1", "0"); got != Epsilon {
		t.Fatalf("GCPAll disjoint = %q, want ε", got)
	}
}

func TestPGCPAll(t *testing.T) {
	g, ok := PGCPAll("10101", "10111")
	if !ok || g != Key("101") {
		t.Fatalf("PGCPAll = %q,%v want 101,true", g, ok)
	}
	// When one key equals the GCP, the proper GCP drops a digit.
	g, ok = PGCPAll("101", "10111")
	if !ok || g != Key("10") {
		t.Fatalf("PGCPAll(101,10111) = %q,%v want 10,true", g, ok)
	}
	g, ok = PGCPAll("", "10111")
	if ok || g != Epsilon {
		t.Fatalf("PGCPAll(ε,·) = %q,%v want ε,false", g, ok)
	}
	if _, ok := PGCPAll(); ok {
		t.Fatalf("PGCPAll() must report no prefix")
	}
}

func TestPrefixesPaperExample(t *testing.T) {
	// Prefixes(10101) = {ε, 1, 10, 101, 1010} (Section 3).
	got := Prefixes("10101")
	want := []Key{"", "1", "10", "101", "1010"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Prefixes(10101) = %v, want %v", got, want)
	}
	if Prefixes(Epsilon) != nil {
		t.Fatalf("Prefixes(ε) must be empty")
	}
}

func TestHasProperPrefixIn(t *testing.T) {
	set := []Key{"10", "111"}
	if !HasProperPrefixIn("101", set) {
		t.Fatalf("10 properly prefixes 101")
	}
	if HasProperPrefixIn("10", set) {
		t.Fatalf("10 is not a proper prefix of itself; 111 unrelated")
	}
	if HasProperPrefixIn("0", set) {
		t.Fatalf("nothing prefixes 0")
	}
}

func TestBetween(t *testing.T) {
	cases := []struct {
		x, a, b Key
		want    bool
	}{
		{"5", "1", "9", true},
		{"1", "1", "9", false},
		{"9", "1", "9", false},
		{"0", "1", "9", false},
		// wrapped interval (9,1): contains keys above 9 or below 1
		{"95", "9", "1", true},
		{"0", "9", "1", true},
		{"5", "9", "1", false},
		// degenerate a==b: everything but the point
		{"5", "3", "3", true},
		{"3", "3", "3", false},
	}
	for _, c := range cases {
		if got := Between(c.x, c.a, c.b); got != c.want {
			t.Errorf("Between(%q,%q,%q) = %v, want %v", c.x, c.a, c.b, got, c.want)
		}
	}
}

func TestBetweenRightIncl(t *testing.T) {
	if !BetweenRightIncl("9", "1", "9") {
		t.Fatalf("(1,9] must contain 9")
	}
	if BetweenRightIncl("1", "1", "9") {
		t.Fatalf("(1,9] must not contain 1")
	}
	if !BetweenRightIncl("3", "3", "3") {
		t.Fatalf("(a,a] is the full circle and contains a at the right bound")
	}
	if !BetweenRightIncl("0", "9", "1") {
		t.Fatalf("wrapped (9,1] must contain 0")
	}
}

func TestSortKeys(t *testing.T) {
	ks := []Key{"101", "", "10", "0111", "10"}
	SortKeys(ks)
	want := []Key{"", "0111", "10", "10", "101"}
	if !reflect.DeepEqual(ks, want) {
		t.Fatalf("SortKeys = %v, want %v", ks, want)
	}
}

func TestNewAlphabet(t *testing.T) {
	a, err := NewAlphabet("01")
	if err != nil {
		t.Fatalf("NewAlphabet: %v", err)
	}
	if a.Size() != 2 {
		t.Fatalf("Size = %d, want 2", a.Size())
	}
	if _, err := NewAlphabet(""); err == nil {
		t.Fatalf("empty alphabet must error")
	}
	if _, err := NewAlphabet("011"); err == nil {
		t.Fatalf("duplicate digits must error")
	}
}

func TestMustAlphabetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("MustAlphabet on bad input must panic")
		}
	}()
	MustAlphabet("")
}

func TestAlphabetValidContains(t *testing.T) {
	if !Binary.Valid("010110") || Binary.Valid("0120") {
		t.Fatalf("Binary.Valid wrong")
	}
	if !Binary.Valid(Epsilon) {
		t.Fatalf("ε is valid in every alphabet")
	}
	if !Binary.Contains('0') || Binary.Contains('2') {
		t.Fatalf("Binary.Contains wrong")
	}
	if !LowerAlnum.Valid("s3l_mat_mult") {
		t.Fatalf("LowerAlnum should accept routine names")
	}
	if !PrintableASCII.Valid("PDGESV v2.1") {
		t.Fatalf("PrintableASCII should accept mixed-case keys")
	}
}

func TestAlphabetDigitsSortedCopy(t *testing.T) {
	a := MustAlphabet("ba")
	d := a.Digits()
	if d[0] != 'a' || d[1] != 'b' {
		t.Fatalf("digits must be sorted: %v", d)
	}
	d[0] = 'z'
	if a.Digits()[0] != 'a' {
		t.Fatalf("Digits must return a copy")
	}
}

func TestRandomKey(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		k := Binary.RandomKey(r, 2, 8)
		if k.Len() < 2 || k.Len() > 8 {
			t.Fatalf("length %d out of [2,8]", k.Len())
		}
		if !Binary.Valid(k) {
			t.Fatalf("invalid key %q", k)
		}
	}
	if k := Binary.RandomKey(r, 5, 5); k.Len() != 5 {
		t.Fatalf("fixed-length key has length %d", k.Len())
	}
	if k := Binary.RandomKey(r, -3, -1); !k.IsEmpty() {
		t.Fatalf("negative bounds must yield ε, got %q", k)
	}
	if k := Binary.RandomKey(r, 4, 2); k.Len() != 4 {
		t.Fatalf("maxLen<minLen must clamp to minLen, got %d", k.Len())
	}
}

func TestRandomKeyDeterministic(t *testing.T) {
	r1 := rand.New(rand.NewSource(42))
	r2 := rand.New(rand.NewSource(42))
	for i := 0; i < 50; i++ {
		if a, b := Binary.RandomKey(r1, 0, 10), Binary.RandomKey(r2, 0, 10); a != b {
			t.Fatalf("same seed must give same keys: %q vs %q", a, b)
		}
	}
}

// --- property-based tests -------------------------------------------------

// binKey adapts random strings to binary keys for testing/quick.
type binKey Key

func (binKey) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(size + 1)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('0' + r.Intn(2))
	}
	return reflect.ValueOf(binKey(b))
}

func TestPropGCPCommutative(t *testing.T) {
	f := func(a, b binKey) bool {
		return GCP(Key(a), Key(b)) == GCP(Key(b), Key(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropGCPIsPrefixOfBoth(t *testing.T) {
	f := func(a, b binKey) bool {
		g := GCP(Key(a), Key(b))
		return IsPrefix(g, Key(a)) && IsPrefix(g, Key(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropGCPMaximal(t *testing.T) {
	// No longer common prefix exists: the digits right after the GCP
	// differ (or one key ends).
	f := func(a, b binKey) bool {
		g := GCP(Key(a), Key(b))
		if len(g) == len(a) || len(g) == len(b) {
			return true
		}
		return a[len(g)] != b[len(g)]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropGCPIdempotent(t *testing.T) {
	f := func(a binKey) bool { return GCP(Key(a), Key(a)) == Key(a) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropGCPAssociative(t *testing.T) {
	f := func(a, b, c binKey) bool {
		return GCP(GCP(Key(a), Key(b)), Key(c)) == GCP(Key(a), GCP(Key(b), Key(c)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropPrefixesAreProper(t *testing.T) {
	f := func(a binKey) bool {
		for _, p := range Prefixes(Key(a)) {
			if !IsProperPrefix(p, Key(a)) {
				return false
			}
		}
		return len(Prefixes(Key(a))) == len(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropConcatPrefix(t *testing.T) {
	// u is always a prefix of uv; proper iff v nonempty.
	f := func(u, v binKey) bool {
		uv := Key(u).Concat(Key(v))
		if !IsPrefix(Key(u), uv) {
			return false
		}
		return IsProperPrefix(Key(u), uv) == (len(v) > 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropBetweenCircularExhaustive(t *testing.T) {
	// On the circle, for distinct a,b every x != a,b is in exactly one
	// of (a,b) and (b,a).
	f := func(x, a, b binKey) bool {
		kx, ka, kb := Key(x), Key(a), Key(b)
		if ka == kb || kx == ka || kx == kb {
			return true
		}
		in1, in2 := Between(kx, ka, kb), Between(kx, kb, ka)
		return in1 != in2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropRandomKeyValid(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		k := LowerAlnum.RandomKey(r, 0, 12)
		if !LowerAlnum.Valid(k) {
			t.Fatalf("generated invalid key %q", k)
		}
	}
}
