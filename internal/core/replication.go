package core

import (
	"fmt"

	"dlpt/internal/keys"
)

// Replication and crash recovery. The paper's protocol handles
// graceful departures only; its companion work ([5], [6] and the
// PGCP-tree self-stabilization line of the same authors) motivates
// replicating node state so the tree survives crashes. We implement
// true successor replication: every tree node's snapshot lives on the
// ring successor of its host peer, refreshed by Replicate — e.g. once
// per time unit — and used by Recover after a crash. Because replicas
// have a *place*, topology changes have a replication cost: a join,
// leave, crash recovery or balancing rename moves the affected
// replica sets to their new successor targets, and that transfer
// traffic is counted (TransferMsgs/TransferredNodes) — replication
// cost tracks churn as in the paper's model instead of being flat per
// Replicate tick.
//
// Recover restores every replicated node and then runs an
// anti-entropy sweep that rebuilds the tree links canonically: the
// PGCP tree over a given key set is unique, so the structural
// (dataless) nodes and all father/child pointers are derivable from
// the surviving data keys. Snapshots taken before later insertions
// can therefore never resurrect stale structure; only *data* declared
// after the last snapshot on a crashed peer can be lost — and Recover
// reports exactly which keys, so loss windows are assertable. After
// Recover the full Validate invariant set holds again (asserted by
// the failure-injection tests). Until Recover runs, tree-routed
// operations may fail: a crash leaves dangling references, exactly as
// in a real deployment before repair.
//
// A crash loses two things at once: the peer's node states (their
// replicas survive on the peer's successor) and the replica set the
// peer held on behalf of its predecessor (whose live nodes survive
// and are re-replicated at the next tick) — the standard successor
// replication trade-off.

// ReplicationCounters tracks replication traffic.
type ReplicationCounters struct {
	// SnapshotMsgs counts node snapshots shipped to successors by
	// Replicate.
	SnapshotMsgs int
	// RestoredNodes counts nodes reinstalled from snapshots.
	RestoredNodes int
	// LostNodes counts crashed nodes that could not be recovered.
	LostNodes int
	// Failures counts crash events.
	Failures int
	// RepairMsgs counts anti-entropy link-repair messages.
	RepairMsgs int
	// TransferMsgs counts replica-set transfer messages exchanged
	// when topology changes re-home replicas (one message per
	// source→target batch per event).
	TransferMsgs int
	// TransferredNodes counts replica snapshots moved by re-homing.
	TransferredNodes int
}

// ReplicaBatch is the successor shipment of one host's snapshots: the
// unit the deployment engines route through their per-peer or wire
// paths (live mailboxes, tcp REPLICA frames).
type ReplicaBatch struct {
	// From is the host peer whose nodes are snapshotted; To its ring
	// successor, where the snapshots belong.
	From, To keys.Key
	Infos    []NodeInfo
}

// replicaTarget returns the peer that must hold the replica of node
// k: the ring successor of k's host.
func (net *Network) replicaTarget(k keys.Key) (keys.Key, bool) {
	host, ok := net.HostOf(k)
	if !ok {
		return keys.Epsilon, false
	}
	succ, ok := net.ring.Successor(host)
	if !ok {
		return keys.Epsilon, false
	}
	return succ, true
}

// placeReplica installs (or refreshes) the replica of k on peer tgt,
// evicting any stale copy elsewhere. Counters are the caller's job.
func (net *Network) placeReplica(k keys.Key, info NodeInfo, tgt keys.Key) {
	if net.replicaLoc == nil {
		net.replicaLoc = make(map[keys.Key]keys.Key)
	}
	if cur, ok := net.replicaLoc[k]; ok && cur != tgt {
		if p, ok := net.peers[cur]; ok {
			delete(p.Replicas, k)
		}
	}
	net.peers[tgt].Replicas[k] = info
	net.replicaLoc[k] = tgt
}

// ReplicaPlan computes one replication tick without applying it: for
// every peer, the batch of node snapshots bound for its ring
// successor, in ascending host order. The sequential engine applies
// the plan inline (Replicate); the concurrent engines route each
// batch through their real per-peer delivery paths and apply it with
// AcceptReplicas.
func (net *Network) ReplicaPlan() []ReplicaBatch {
	ids := net.ring.IDs()
	out := make([]ReplicaBatch, 0, len(ids))
	for _, id := range ids {
		p := net.peers[id]
		if len(p.Nodes) == 0 {
			continue
		}
		succ, _ := net.ring.Successor(id)
		b := ReplicaBatch{From: id, To: succ, Infos: make([]NodeInfo, 0, len(p.Nodes))}
		for _, k := range p.NodeKeys() {
			b.Infos = append(b.Infos, infoOf(p.Nodes[k]))
		}
		out = append(out, b)
	}
	return out
}

// AcceptReplicas installs one shipped batch, re-routing entries whose
// placement changed while the batch was in flight: the shipped target
// is only a hint — the successor rule at install time wins, so a
// topology change racing a concurrent engine's Replicate tick cannot
// pin a replica on a stale successor. It returns the number of
// snapshots installed and accounts them as replication maintenance
// traffic.
func (net *Network) AcceptReplicas(from, to keys.Key, infos []NodeInfo) int {
	count := 0
	for _, info := range infos {
		tgt, ok := net.replicaTarget(info.Key)
		if !ok {
			if _, alive := net.peers[to]; !alive {
				continue
			}
			tgt = to
		}
		net.placeReplica(info.Key, info, tgt)
		count++
		net.Counters.MaintenanceMsgs++
		if tgt != from {
			net.Counters.MaintenancePhysical++
		}
	}
	net.Replication.SnapshotMsgs += count
	return count
}

// CompactReplicas drops the snapshots of nodes that no longer exist —
// except those lost to a crash that has not been recovered yet, which
// are exactly the snapshots Recover needs.
func (net *Network) CompactReplicas() {
	for k, loc := range net.replicaLoc {
		if !net.HasNode(k) && !net.pendingLost[k] {
			if p, ok := net.peers[loc]; ok {
				delete(p.Replicas, k)
			}
			delete(net.replicaLoc, k)
		}
	}
}

// Replicate snapshots the state of every tree node to its host's ring
// successor (one message per node, counted as maintenance) and
// compacts stale snapshots. It returns the number of nodes
// replicated.
func (net *Network) Replicate() int {
	count := 0
	for _, b := range net.ReplicaPlan() {
		count += net.AcceptReplicas(b.From, b.To, b.Infos)
	}
	net.CompactReplicas()
	return count
}

// RehomeReplicas moves every replica whose successor target changed —
// after a join, leave, recovery or balancing round — back to the peer
// the placement rule names. Replicas of crashed, unrecovered nodes
// stay where they are (they are the recovery state). Transfers are
// batched per source→target pair: one transfer message per pair, one
// transferred node per snapshot.
func (net *Network) RehomeReplicas() (msgs, moved int) {
	type pair struct{ from, to keys.Key }
	batches := make(map[pair]bool)
	for k, loc := range net.replicaLoc {
		if !net.HasNode(k) {
			continue // crashed, unrecovered: leave the snapshot in place
		}
		want, ok := net.replicaTarget(k)
		if !ok || want == loc {
			continue
		}
		info := net.peers[loc].Replicas[k]
		delete(net.peers[loc].Replicas, k)
		net.peers[want].Replicas[k] = info
		net.replicaLoc[k] = want
		batches[pair{loc, want}] = true
		moved++
	}
	msgs = len(batches)
	net.Replication.TransferMsgs += msgs
	net.Replication.TransferredNodes += moved
	net.Counters.MaintenanceMsgs += msgs
	net.Counters.MaintenancePhysical += msgs
	return msgs, moved
}

// ReplicaHolder reports which peer holds the replica of node k.
func (net *Network) ReplicaHolder(k keys.Key) (keys.Key, bool) {
	loc, ok := net.replicaLoc[k]
	return loc, ok
}

// NumReplicas returns the total number of replica snapshots held
// across all peers.
func (net *Network) NumReplicas() int { return len(net.replicaLoc) }

// FailPeer crashes the peer with the given id: its node states vanish
// without transfer, the replica set it held for its predecessor
// vanishes with it, and the ring links are mended around it. The tree
// is left with dangling references; call Recover before further
// tree-routed operations.
func (net *Network) FailPeer(id keys.Key) error {
	p, ok := net.peers[id]
	if !ok {
		return fmt.Errorf("core: failure of unknown peer %q", id)
	}
	if net.NumPeers() == 1 {
		return fmt.Errorf("core: cannot crash the last peer")
	}
	pred := net.peers[p.Pred]
	succ := net.peers[p.Succ]
	pred.Succ = p.Succ
	succ.Pred = p.Pred
	delete(net.peers, id)
	net.ring.Remove(id)
	if net.Placement == PlacementHashed {
		net.hashRemovePeer(id)
	}
	// The crashed peer's replica set is gone with it; its predecessor's
	// live nodes are re-replicated at the next tick.
	for k := range p.Replicas {
		delete(net.replicaLoc, k)
	}
	if net.pendingLost == nil {
		net.pendingLost = make(map[keys.Key]bool)
	}
	for k := range p.Nodes {
		net.unindexNode(k)
		net.pendingLost[k] = true
		if net.hasRoot && net.root == k {
			net.hasRoot = false
			net.root = keys.Epsilon
		}
	}
	net.Replication.Failures++
	// Failure detection + ring repair messages.
	net.Counters.MaintenanceMsgs += 2
	net.Counters.MaintenancePhysical += 2
	return nil
}

// Recover restores crashed node state from the successor replicas,
// rebuilds the tree links canonically from the surviving data keys,
// and re-homes replicas onto the repaired topology. It returns the
// number of nodes restored from snapshots and the keys of the crashed
// nodes that could not be brought back (ascending; only data declared
// after the last Replicate on a crashed peer can appear there).
func (net *Network) Recover() (restored int, lost []keys.Key) {
	// Phase 1: reinstall every replicated node that is missing.
	replicated := make([]keys.Key, 0, len(net.replicaLoc))
	for k := range net.replicaLoc {
		replicated = append(replicated, k)
	}
	keys.SortKeys(replicated)
	for _, k := range replicated {
		if net.HasNode(k) {
			continue
		}
		holder := net.peers[net.replicaLoc[k]]
		net.installNode(holder.Replicas[k], keys.Epsilon)
		restored++
	}
	// Phase 2: anti-entropy link rebuild — skipped when nothing was
	// reinstalled and no crash is pending, i.e. the canonical
	// structure cannot have been damaged since the last repair.
	if restored > 0 || len(net.pendingLost) > 0 {
		net.rebuildLinks()
	}
	// Phase 3: account for what stayed lost — by name, so callers can
	// assert loss windows precisely instead of by cardinality.
	for k := range net.pendingLost {
		if !net.HasNode(k) {
			lost = append(lost, k)
		}
	}
	keys.SortKeys(lost)
	net.pendingLost = nil
	if restored > 0 || len(lost) > 0 {
		// The catalogue changed without passing through the journal
		// funnel: lost keys vanished, and restored nodes may have
		// rolled back to the values of an older replica. The image is
		// stale; rebuild it on the next capture.
		net.invalidateCatalogue()
	}
	net.Replication.RestoredNodes += restored
	net.Replication.LostNodes += len(lost)
	// Phase 4: restored nodes live on today's ring — move their
	// replicas to today's successors.
	net.RehomeReplicas()
	return restored, lost
}

// rebuildLinks recomputes the canonical PGCP structure over the
// current data keys: stale structural nodes are dropped, missing
// structural nodes recreated, and deviating father/child pointers and
// the root reset. One repair message per actually-repaired node is
// accounted — nodes whose links already match the canonical structure
// cost nothing, so repeated recoveries of a mostly-intact tree are
// cheap.
func (net *Network) rebuildLinks() {
	type hosted struct {
		n *Node
		p *Peer
	}
	existing := make(map[keys.Key]hosted)
	data := make([]keys.Key, 0, len(net.nodeList))
	for _, p := range net.peers {
		for k, n := range p.Nodes {
			existing[k] = hosted{n, p}
			if n.HasData() {
				data = append(data, k)
			}
		}
	}
	keys.SortKeys(data)
	want, root, hasRoot := buildCanonical(data)

	// Drop nodes that are not canonical labels (stale structural
	// leftovers; data nodes are always canonical).
	for k, h := range existing {
		if _, ok := want[k]; !ok {
			h.p.release(k)
			net.unindexNode(k)
			delete(existing, k)
			net.Replication.RepairMsgs++
			net.Counters.MaintenanceMsgs++
		}
	}
	// Create canonical labels that are missing (structural nodes are
	// derivable; lost data nodes stay lost unless they were
	// replicated, which phase 1 already handled).
	for label := range want {
		if _, ok := existing[label]; ok {
			continue
		}
		net.installNode(NodeInfo{Key: label}, keys.Epsilon)
		n, p, _ := net.nodeState(label)
		existing[label] = hosted{n, p}
	}
	// Reset the pointers that deviate from the canonical structure.
	for label, cn := range want {
		h := existing[label]
		if linksCanonical(h.n, cn) {
			continue
		}
		h.n.Children = make(map[keys.Key]struct{}, len(cn.kids))
		for _, c := range cn.kids {
			h.n.Children[c] = struct{}{}
		}
		h.n.Father, h.n.HasFather = cn.father, cn.hasFather
		net.Replication.RepairMsgs++
		net.Counters.MaintenanceMsgs++
	}
	net.root, net.hasRoot = root, hasRoot
}

// canonNode is one vertex of the structure computed by
// buildCanonical: the father and children every live node must carry.
type canonNode struct {
	father    keys.Key
	hasFather bool
	kids      []keys.Key
}

// linksCanonical reports whether n's links already match the
// canonical structure.
func linksCanonical(n *Node, cn *canonNode) bool {
	if n.HasFather != cn.hasFather || (cn.hasFather && n.Father != cn.father) {
		return false
	}
	if len(n.Children) != len(cn.kids) {
		return false
	}
	for _, c := range cn.kids {
		if _, ok := n.Children[c]; !ok {
			return false
		}
	}
	return true
}

// buildCanonical computes the canonical PGCP tree over sorted,
// distinct data keys in one linear stack pass — the sorted-batch
// construction the snapshot codec uses — instead of re-routing every
// key through a fresh reference trie. The canonical label set is the
// keys plus the pairwise GCPs of sorted neighbours; the stack holds
// the rightmost path, and a node's final father is known the moment
// it leaves that path: either the label beneath it (still at least as
// long as the branch point) or the branch point itself, interposed.
func buildCanonical(sorted []keys.Key) (want map[keys.Key]*canonNode, root keys.Key, ok bool) {
	if len(sorted) == 0 {
		return nil, keys.Epsilon, false
	}
	want = make(map[keys.Key]*canonNode, 2*len(sorted))
	node := func(l keys.Key) *canonNode {
		n, ok := want[l]
		if !ok {
			n = &canonNode{father: keys.Epsilon}
			want[l] = n
		}
		return n
	}
	attach := func(father, child keys.Key) {
		node(father).kids = append(node(father).kids, child)
		c := node(child)
		c.father, c.hasFather = father, true
	}
	stack := make([]keys.Key, 1, 16)
	stack[0] = sorted[0]
	node(sorted[0])
	for i := 1; i < len(sorted); i++ {
		g := keys.GCP(sorted[i-1], sorted[i])
		// Unwind the rightmost path down to the branch point; after
		// this loop the top of the stack is exactly g. A node is
		// attached only as it leaves the path — while it remains on
		// it, a later key could still interpose a branch beneath the
		// tentative father.
		for len(stack[len(stack)-1]) > len(g) {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if len(stack) > 0 && len(stack[len(stack)-1]) >= len(g) {
				attach(stack[len(stack)-1], top)
				continue
			}
			// g sits strictly between top and the rest of the path
			// (or the path is exhausted): interpose it.
			attach(g, top)
			stack = append(stack, g)
		}
		stack = append(stack, sorted[i])
	}
	for len(stack) > 1 {
		top := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		attach(stack[len(stack)-1], top)
	}
	return want, stack[0], true
}
