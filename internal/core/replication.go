package core

import (
	"fmt"

	"dlpt/internal/keys"
	"dlpt/internal/trie"
)

// Replication and crash recovery. The paper's protocol handles
// graceful departures only; its companion work ([5], [6] and the
// PGCP-tree self-stabilization line of the same authors) motivates
// replicating node state so the tree survives crashes. We implement
// successor-style replication: a snapshot of every tree node is kept
// off-host (conceptually on the host's ring successor), refreshed by
// Replicate — e.g. once per time unit — and used by Recover after a
// crash.
//
// Recover restores every replicated node and then runs an
// anti-entropy sweep that rebuilds the tree links canonically: the
// PGCP tree over a given key set is unique, so the structural
// (dataless) nodes and all father/child pointers are derivable from
// the surviving data keys. Snapshots taken before later insertions
// can therefore never resurrect stale structure; only *data* declared
// after the last snapshot on a crashed peer can be lost. After
// Recover the full Validate invariant set holds again (asserted by
// the failure-injection tests). Until Recover runs, tree-routed
// operations may fail: a crash leaves dangling references, exactly as
// in a real deployment before repair.

// ReplicationCounters tracks replication traffic.
type ReplicationCounters struct {
	// SnapshotMsgs counts node snapshots shipped by Replicate.
	SnapshotMsgs int
	// RestoredNodes counts nodes reinstalled from snapshots.
	RestoredNodes int
	// LostNodes counts crashed nodes that could not be recovered.
	LostNodes int
	// Failures counts crash events.
	Failures int
	// RepairMsgs counts anti-entropy link-repair messages.
	RepairMsgs int
}

// Replicate snapshots the state of every tree node to the replica
// store (one message per node, counted as maintenance). It returns
// the number of nodes replicated.
func (net *Network) Replicate() int {
	if net.replicaStore == nil {
		net.replicaStore = make(map[keys.Key]NodeInfo)
	}
	count := 0
	for _, p := range net.peers {
		for _, n := range p.Nodes {
			net.replicaStore[n.Key] = infoOf(n)
			count++
		}
	}
	// Drop snapshots of nodes that no longer exist (compaction) —
	// except those lost to a crash that has not been recovered yet,
	// which are exactly the snapshots Recover needs.
	for k := range net.replicaStore {
		if !net.HasNode(k) && !net.pendingLost[k] {
			delete(net.replicaStore, k)
		}
	}
	net.Replication.SnapshotMsgs += count
	net.Counters.MaintenanceMsgs += count
	net.Counters.MaintenancePhysical += count
	return count
}

// FailPeer crashes the peer with the given id: its node states vanish
// without transfer, and the ring links are mended around it. The tree
// is left with dangling references; call Recover before further
// tree-routed operations.
func (net *Network) FailPeer(id keys.Key) error {
	p, ok := net.peers[id]
	if !ok {
		return fmt.Errorf("core: failure of unknown peer %q", id)
	}
	if net.NumPeers() == 1 {
		return fmt.Errorf("core: cannot crash the last peer")
	}
	pred := net.peers[p.Pred]
	succ := net.peers[p.Succ]
	pred.Succ = p.Succ
	succ.Pred = p.Pred
	delete(net.peers, id)
	net.ring.Remove(id)
	if net.Placement == PlacementHashed {
		net.hashRemovePeer(id)
	}
	if net.pendingLost == nil {
		net.pendingLost = make(map[keys.Key]bool)
	}
	for k := range p.Nodes {
		net.unindexNode(k)
		net.pendingLost[k] = true
		if net.hasRoot && net.root == k {
			net.hasRoot = false
			net.root = keys.Epsilon
		}
	}
	net.Replication.Failures++
	// Failure detection + ring repair messages.
	net.Counters.MaintenanceMsgs += 2
	net.Counters.MaintenancePhysical += 2
	return nil
}

// Recover restores crashed node state from the replica store, then
// rebuilds the tree links canonically from the surviving data keys.
// It returns the number of nodes restored from snapshots and the
// number of crashed nodes that could not be brought back.
func (net *Network) Recover() (restored, lost int) {
	// Phase 1: reinstall every replicated node that is missing.
	replicated := make([]keys.Key, 0, len(net.replicaStore))
	for k := range net.replicaStore {
		replicated = append(replicated, k)
	}
	keys.SortKeys(replicated)
	for _, k := range replicated {
		if net.HasNode(k) {
			continue
		}
		net.installNode(net.replicaStore[k], keys.Epsilon)
		restored++
	}
	// Phase 2: anti-entropy link rebuild.
	net.rebuildLinks()
	// Phase 3: account for what stayed lost.
	for k := range net.pendingLost {
		if !net.HasNode(k) {
			lost++
		}
	}
	net.pendingLost = nil
	net.Replication.RestoredNodes += restored
	net.Replication.LostNodes += lost
	return restored, lost
}

// rebuildLinks recomputes the canonical PGCP structure over the
// current data keys: stale structural nodes are dropped, missing
// structural nodes recreated, and every father/child pointer and the
// root reset. One repair message per touched node is accounted.
func (net *Network) rebuildLinks() {
	ref := trie.New()
	type hosted struct {
		n *Node
		p *Peer
	}
	existing := make(map[keys.Key]hosted)
	for _, p := range net.peers {
		for k, n := range p.Nodes {
			existing[k] = hosted{n, p}
			if n.HasData() {
				ref.InsertKey(k)
			}
		}
	}
	want := make(map[keys.Key]*trie.Node)
	ref.Walk(func(tn *trie.Node) { want[tn.Label] = tn })

	// Drop nodes that are not canonical labels (stale structural
	// leftovers; data nodes are always canonical).
	for k, h := range existing {
		if _, ok := want[k]; !ok {
			h.p.release(k)
			net.unindexNode(k)
			delete(existing, k)
			net.Replication.RepairMsgs++
			net.Counters.MaintenanceMsgs++
		}
	}
	// Create canonical labels that are missing (structural nodes are
	// derivable; lost data nodes stay lost unless they were
	// replicated, which phase 1 already handled).
	for label := range want {
		if _, ok := existing[label]; ok {
			continue
		}
		net.installNode(NodeInfo{Key: label}, keys.Epsilon)
		n, p, _ := net.nodeState(label)
		existing[label] = hosted{n, p}
	}
	// Reset every pointer from the canonical structure.
	for label, tn := range want {
		h := existing[label]
		h.n.Children = make(map[keys.Key]struct{}, tn.NumChildren())
		for _, c := range tn.Children() {
			h.n.Children[c.Label] = struct{}{}
		}
		if tn.Parent == nil {
			h.n.HasFather = false
			h.n.Father = keys.Epsilon
		} else {
			h.n.HasFather = true
			h.n.Father = tn.Parent.Label
		}
		net.Replication.RepairMsgs++
		net.Counters.MaintenanceMsgs++
	}
	if root := ref.Root(); root != nil {
		net.root = root.Label
		net.hasRoot = true
	} else {
		net.root = keys.Epsilon
		net.hasRoot = false
	}
}
