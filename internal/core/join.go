package core

import (
	"fmt"
	"math"
	"math/rand"

	"dlpt/internal/keys"
)

// JoinPeer inserts a new peer with the given identifier and capacity.
// Under the lexicographic placement the join request enters the tree
// on a random node and is routed by Algorithms 1 and 2; under the
// hashed placement the peer takes a position on the hashed ring as in
// the original DHT-backed DLPT. The supplied generator selects the
// entry node only.
func (net *Network) JoinPeer(id keys.Key, capacity int, r *rand.Rand) error {
	if capacity <= 0 {
		return fmt.Errorf("core: peer %q with non-positive capacity %d", id, capacity)
	}
	if !net.Alphabet.Valid(id) {
		return fmt.Errorf("core: peer id %q not in alphabet", id)
	}
	if _, exists := net.peers[id]; exists {
		return fmt.Errorf("core: peer %q already present", id)
	}
	if net.NumPeers() == 0 {
		p := NewPeer(id, capacity)
		net.peers[id] = p
		net.ring.Insert(id)
		if net.Placement == PlacementHashed {
			net.hashInsertPeer(id)
		}
		return nil
	}
	if net.Placement == PlacementHashed {
		if err := net.joinHashed(id, capacity); err != nil {
			return err
		}
		net.RehomeReplicas()
		return nil
	}
	entry, ok := net.RandomNodeKey(r)
	if !ok {
		// No tree yet: hand the request straight to the peer layer,
		// entering the ring at an arbitrary peer.
		start, _ := net.RandomPeerID(r)
		net.sendToPeer(start, start, message{
			typ:          msgNewPredecessor,
			joinID:       id,
			joinCapacity: capacity,
		})
		if err := net.drain(); err != nil {
			return err
		}
		net.RehomeReplicas()
		return nil
	}
	host, _ := net.HostOf(entry)
	net.sendToNode(host, entry, message{
		typ:          msgPeerJoin,
		joinID:       id,
		joinState:    0,
		joinCapacity: capacity,
	})
	if err := net.drain(); err != nil {
		return err
	}
	// The join moved node responsibility (and shifted a successor
	// interval): the affected replica sets follow, paid as transfer
	// traffic.
	net.RehomeReplicas()
	return nil
}

// handlePeerJoin is Algorithm 1, run on node p. State 0 climbs until
// the current node's label prefixes the joining id (or the root);
// state 1 descends towards the highest node not above the joining id,
// then delegates to the peer layer.
func (net *Network) handlePeerJoin(p *Peer, n *Node, m message) error {
	P := m.joinID
	if m.joinState == 0 {
		if !keys.IsPrefix(n.Key, P) {
			if n.HasFather {
				m2 := m
				net.sendToNode(p.ID, n.Father, m2)
				return nil
			}
			// Root reached: switch to the downward phase here.
		}
		m.joinState = 1
	}
	if q, ok := n.MaxChildAtMost(P, true); ok {
		m2 := m
		net.sendToNode(p.ID, q, m2)
		return nil
	}
	// n is the highest node <= P known here; delegate to the peer
	// layer on n's host ("send to host", line 1.16).
	net.sendToPeer(p.ID, p.ID, message{
		typ:          msgNewPredecessor,
		joinID:       P,
		joinCapacity: m.joinCapacity,
	})
	return nil
}

// handleNewPredecessor is Algorithm 2, run on peer Q, extended with
// the wrap-around termination the paper leaves implicit: the request
// walks successors until P falls within (pred(Q), Q], then P is
// installed as Q's new predecessor and takes over the tree nodes now
// in its range. YourInformation and UpdateSuccessor are applied
// inline and accounted as messages.
func (net *Network) handleNewPredecessor(q *Peer, m message) error {
	P := m.joinID
	if P == q.ID {
		return fmt.Errorf("core: joining peer id %q collides with existing peer", P)
	}
	if !keys.BetweenRightIncl(P, q.Pred, q.ID) {
		net.sendToPeer(q.ID, q.Succ, m)
		return nil
	}
	newp := NewPeer(P, m.joinCapacity)
	newp.Pred = q.Pred
	newp.Succ = q.ID

	// Dispatch ν_Q between P and Q by identifier (lines 2.06-2.07,
	// circular form): nodes in (pred(Q), P] move to P.
	moved := 0
	for k := range q.Nodes {
		if keys.BetweenRightIncl(k, q.Pred, P) {
			n, _ := q.release(k)
			newp.Nodes[k] = n
			moved++
		}
	}
	net.Counters.NodesTransferred += moved
	// YourInformation to P (1 message carrying pred/succ/nodes).
	net.Counters.MaintenanceMsgs++
	net.Counters.MaintenancePhysical++
	// UpdateSuccessor to pred(Q).
	net.Counters.MaintenanceMsgs++
	if q.Pred != q.ID {
		net.Counters.MaintenancePhysical++
	}
	if pred, ok := net.peers[q.Pred]; ok {
		pred.Succ = P
	}
	q.Pred = P
	net.peers[P] = newp
	net.ring.Insert(P)
	return nil
}

// joinHashed places a peer on the hashed ring (the DHT-style mapping
// of the original DLPT). The DHT traffic is modelled with the
// standard Chord bounds: ceil(log2 N) routing messages for the join
// lookup plus ceil(log2 N)^2 messages to repair the finger tables
// that reference the new region (Stoica et al., Section 4); node
// states whose hash now maps to the new peer move over.
func (net *Network) joinHashed(id keys.Key, capacity int) error {
	logN := int(math.Ceil(math.Log2(float64(net.NumPeers() + 1))))
	lookupCost := logN + logN*logN
	net.Counters.MaintenanceMsgs += lookupCost
	net.Counters.MaintenancePhysical += lookupCost

	// The peer that currently owns the new peer's hash position will
	// cede part of its range.
	ownerID, _ := net.hashHostOf(hash64(id))
	owner := net.peers[ownerID]
	net.hashInsertPeer(id)
	newp := NewPeer(id, capacity)
	net.peers[id] = newp
	net.ring.Insert(id)
	net.relink(id)

	moved := 0
	for k := range owner.Nodes {
		if h, _ := net.HostOf(k); h == id {
			n, _ := owner.release(k)
			newp.Nodes[k] = n
			moved++
		}
	}
	net.Counters.NodesTransferred += moved
	net.Counters.MaintenanceMsgs += moved
	net.Counters.MaintenancePhysical += moved
	return nil
}

// relink repairs the pred/succ links of id and its ring neighbours
// from the ring bookkeeping (used by the hashed join/leave paths,
// where the lexicographic links are bookkeeping only).
func (net *Network) relink(id keys.Key) {
	p := net.peers[id]
	succ, _ := net.ring.Successor(id)
	pred, _ := net.ring.Predecessor(id)
	p.Succ = succ
	p.Pred = pred
	net.peers[succ].Pred = id
	net.peers[pred].Succ = id
}

// LeavePeer removes a peer gracefully: its tree nodes transfer to the
// peers that become responsible for them, and ring links are mended.
// Removing the last peer while tree nodes remain is an error.
func (net *Network) LeavePeer(id keys.Key) error {
	p, ok := net.peers[id]
	if !ok {
		return fmt.Errorf("core: leave of unknown peer %q", id)
	}
	if net.NumPeers() == 1 && len(p.Nodes) > 0 {
		return fmt.Errorf("core: last peer %q cannot leave while hosting %d nodes",
			id, len(p.Nodes))
	}
	if net.NumPeers() == 1 {
		for k := range p.Replicas {
			delete(net.replicaLoc, k)
		}
		delete(net.peers, id)
		net.ring.Remove(id)
		if net.Placement == PlacementHashed {
			net.hashRemovePeer(id)
		}
		return nil
	}
	// Mend the ring first so HostOf resolves without the leaver.
	pred := net.peers[p.Pred]
	succ := net.peers[p.Succ]
	pred.Succ = p.Succ
	succ.Pred = p.Pred
	net.Counters.MaintenanceMsgs += 2 // link-repair notifications
	net.Counters.MaintenancePhysical += 2
	if net.Placement == PlacementHashed {
		// Finger tables referencing the leaver must be repaired
		// (Chord bound, as in joinHashed).
		logN := int(math.Ceil(math.Log2(float64(net.NumPeers()))))
		net.Counters.MaintenanceMsgs += logN * logN
		net.Counters.MaintenancePhysical += logN * logN
	}
	delete(net.peers, id)
	net.ring.Remove(id)
	if net.Placement == PlacementHashed {
		net.hashRemovePeer(id)
	}
	moved := 0
	for k, n := range p.Nodes {
		host, _ := net.HostOf(k)
		net.peers[host].Nodes[k] = n
		moved++
	}
	net.Counters.NodesTransferred += moved
	net.Counters.MaintenanceMsgs += moved
	net.Counters.MaintenancePhysical += moved
	// The leaver hands its replica set over on the way out (part of
	// the departure transfer), then the handoff's new hosting drives
	// the usual re-homing.
	if len(p.Replicas) > 0 {
		targets := make(map[keys.Key]bool)
		for k, info := range p.Replicas {
			delete(net.replicaLoc, k)
			tgt, ok := net.replicaTarget(k)
			if !ok {
				continue
			}
			net.placeReplica(k, info, tgt)
			targets[tgt] = true
			net.Replication.TransferredNodes++
		}
		net.Replication.TransferMsgs += len(targets)
		net.Counters.MaintenanceMsgs += len(targets)
		net.Counters.MaintenancePhysical += len(targets)
	}
	net.RehomeReplicas()
	return nil
}
