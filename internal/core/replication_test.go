package core

import (
	"math/rand"
	"testing"

	"dlpt/internal/keys"
	"dlpt/internal/workload"
)

func TestReplicateCounts(t *testing.T) {
	net, r := buildNetwork(t, 5, 1<<30, 41)
	for _, k := range workload.GridCorpus(50) {
		if err := net.InsertKey(k, r); err != nil {
			t.Fatal(err)
		}
	}
	n := net.Replicate()
	if n != net.NumNodes() {
		t.Fatalf("replicated %d of %d nodes", n, net.NumNodes())
	}
	if net.Replication.SnapshotMsgs != n {
		t.Fatalf("snapshot counter = %d", net.Replication.SnapshotMsgs)
	}
}

func TestFailPeerErrors(t *testing.T) {
	net, _ := buildNetwork(t, 1, 10, 42)
	if err := net.FailPeer("ghost"); err == nil {
		t.Fatalf("failing unknown peer must error")
	}
	if err := net.FailPeer(net.PeerIDs()[0]); err == nil {
		t.Fatalf("failing the last peer must error")
	}
}

func TestCrashRecoveryFullReplica(t *testing.T) {
	net, r := buildNetwork(t, 10, 1<<30, 43)
	corpus := workload.GridCorpus(200)
	for _, k := range corpus {
		if err := net.InsertKey(k, r); err != nil {
			t.Fatal(err)
		}
	}
	net.Replicate()
	// Crash three peers.
	for i := 0; i < 3; i++ {
		ids := net.PeerIDs()
		if err := net.FailPeer(ids[r.Intn(len(ids))]); err != nil {
			t.Fatal(err)
		}
	}
	restored, lost := net.Recover()
	if lost != 0 {
		t.Fatalf("fully replicated crash lost %d nodes", lost)
	}
	if restored == 0 {
		t.Fatalf("nothing restored")
	}
	mustValidate(t, net)
	for _, k := range corpus {
		if res := net.DiscoverRandom(k, false, r); !res.Satisfied {
			t.Fatalf("key %q lost after recovery", k)
		}
	}
}

func TestCrashRecoveryPartialReplica(t *testing.T) {
	net, r := buildNetwork(t, 10, 1<<30, 44)
	corpus := workload.GridCorpus(300)
	replicated := corpus[:200]
	late := corpus[200:]
	for _, k := range replicated {
		if err := net.InsertKey(k, r); err != nil {
			t.Fatal(err)
		}
	}
	net.Replicate()
	// Insertions after the snapshot are at risk.
	for _, k := range late {
		if err := net.InsertKey(k, r); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		ids := net.PeerIDs()
		if err := net.FailPeer(ids[r.Intn(len(ids))]); err != nil {
			t.Fatal(err)
		}
	}
	_, lost := net.Recover()
	mustValidate(t, net)
	// Every replicated key survives.
	for _, k := range replicated {
		if res := net.DiscoverRandom(k, false, r); !res.Satisfied {
			t.Fatalf("replicated key %q lost", k)
		}
	}
	// Late keys either survive (their host did not crash) or are
	// cleanly absent — discovery must terminate without error.
	missing := 0
	for _, k := range late {
		res := net.DiscoverRandom(k, false, r)
		if !res.Satisfied {
			missing++
			// A lost key can be re-declared.
			if err := net.InsertKey(k, r); err != nil {
				t.Fatalf("re-insert of %q: %v", k, err)
			}
		}
	}
	t.Logf("late keys missing after crash: %d/%d (store lost %d nodes)",
		missing, len(late), lost)
	mustValidate(t, net)
	for _, k := range late {
		if res := net.DiscoverRandom(k, false, r); !res.Satisfied {
			t.Fatalf("re-declared key %q still missing", k)
		}
	}
}

func TestCrashWithoutAnyReplication(t *testing.T) {
	net, r := buildNetwork(t, 8, 1<<30, 45)
	corpus := workload.GridCorpus(150)
	for _, k := range corpus {
		if err := net.InsertKey(k, r); err != nil {
			t.Fatal(err)
		}
	}
	ids := net.PeerIDs()
	if err := net.FailPeer(ids[0]); err != nil {
		t.Fatal(err)
	}
	restored, _ := net.Recover()
	if restored != 0 {
		t.Fatalf("nothing was replicated, yet %d restored", restored)
	}
	mustValidate(t, net)
	// Survivors remain discoverable.
	found := 0
	for _, k := range corpus {
		if res := net.DiscoverRandom(k, false, r); res.Satisfied {
			found++
		}
	}
	if found == 0 {
		t.Fatalf("all keys lost from one crash")
	}
}

func TestRepeatedCrashRecoverCycles(t *testing.T) {
	net, r := buildNetwork(t, 12, 1<<30, 46)
	corpus := workload.GridCorpus(250)
	for _, k := range corpus {
		if err := net.InsertKey(k, r); err != nil {
			t.Fatal(err)
		}
	}
	for cycle := 0; cycle < 6; cycle++ {
		net.Replicate()
		ids := net.PeerIDs()
		if err := net.FailPeer(ids[r.Intn(len(ids))]); err != nil {
			t.Fatal(err)
		}
		if _, lost := net.Recover(); lost != 0 {
			t.Fatalf("cycle %d lost %d replicated nodes", cycle, lost)
		}
		// Replace the capacity by joining a fresh peer (repair must
		// precede tree-routed operations).
		if err := net.JoinPeer(keys.LowerAlnum.RandomKey(r, 12, 12), 1<<30, r); err != nil {
			t.Fatal(err)
		}
		mustValidate(t, net)
	}
	for _, k := range corpus {
		if res := net.DiscoverRandom(k, false, r); !res.Satisfied {
			t.Fatalf("key %q lost across cycles", k)
		}
	}
	if net.Replication.Failures != 6 {
		t.Fatalf("failure counter = %d", net.Replication.Failures)
	}
}

func TestRecoveryAfterRootHostCrash(t *testing.T) {
	net, r := buildNetwork(t, 6, 1<<30, 47)
	for _, k := range []keys.Key{"dgemm", "dgemv", "sgemm", "saxpy"} {
		if err := net.InsertKey(k, r); err != nil {
			t.Fatal(err)
		}
	}
	net.Replicate()
	rootKey, ok := net.Root()
	if !ok {
		t.Fatal("no root")
	}
	host, _ := net.HostOf(rootKey)
	if err := net.FailPeer(host); err != nil {
		t.Fatal(err)
	}
	if _, lost := net.Recover(); lost != 0 {
		t.Fatalf("lost %d", lost)
	}
	mustValidate(t, net)
	if _, ok := net.Root(); !ok {
		t.Fatalf("root not restored")
	}
	for _, k := range []keys.Key{"dgemm", "dgemv", "sgemm", "saxpy"} {
		if res := net.DiscoverRandom(k, false, r); !res.Satisfied {
			t.Fatalf("key %q lost", k)
		}
	}
}

func TestRecoverNoFailureIsNoop(t *testing.T) {
	net, r := buildNetwork(t, 4, 1<<30, 48)
	for _, k := range workload.GridCorpus(40) {
		if err := net.InsertKey(k, r); err != nil {
			t.Fatal(err)
		}
	}
	net.Replicate()
	restored, lost := net.Recover()
	if restored != 0 || lost != 0 {
		t.Fatalf("no-failure recover restored=%d lost=%d", restored, lost)
	}
	mustValidate(t, net)
}

// TestPropCrashRecoveryRandomized drives random crash/recover cycles
// mixed with inserts and churn, validating after every event.
func TestPropCrashRecoveryRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(49))
	net, _ := buildNetwork(t, 10, 1<<30, 50)
	replicatedKeys := make(map[keys.Key]bool)
	var sinceSnapshot []keys.Key
	for step := 0; step < 120; step++ {
		switch r.Intn(6) {
		case 0, 1, 2:
			k := keys.LowerAlnum.RandomKey(r, 2, 8)
			if err := net.InsertKey(k, r); err != nil {
				t.Fatalf("step %d insert: %v", step, err)
			}
			sinceSnapshot = append(sinceSnapshot, k)
		case 3:
			net.Replicate()
			for _, k := range sinceSnapshot {
				replicatedKeys[k] = true
			}
			sinceSnapshot = nil
		case 4:
			if net.NumPeers() > 3 {
				ids := net.PeerIDs()
				if err := net.FailPeer(ids[r.Intn(len(ids))]); err != nil {
					t.Fatalf("step %d fail: %v", step, err)
				}
				net.Recover()
				// Keys inserted after the last snapshot may be gone.
				sinceSnapshot = nil
			}
		case 5:
			if err := net.JoinPeer(keys.LowerAlnum.RandomKey(r, 12, 12), 1<<30, r); err != nil {
				t.Fatalf("step %d join: %v", step, err)
			}
		}
		if err := net.Validate(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
	for k := range replicatedKeys {
		if res := net.DiscoverRandom(k, false, r); !res.Satisfied {
			t.Fatalf("replicated key %q lost", k)
		}
	}
}
