package core

import (
	"math/rand"
	"testing"

	"dlpt/internal/keys"
	"dlpt/internal/workload"
)

func TestReplicateCounts(t *testing.T) {
	net, r := buildNetwork(t, 5, 1<<30, 41)
	for _, k := range workload.GridCorpus(50) {
		if err := net.InsertKey(k, r); err != nil {
			t.Fatal(err)
		}
	}
	n := net.Replicate()
	if n != net.NumNodes() {
		t.Fatalf("replicated %d of %d nodes", n, net.NumNodes())
	}
	if net.Replication.SnapshotMsgs != n {
		t.Fatalf("snapshot counter = %d", net.Replication.SnapshotMsgs)
	}
}

func TestFailPeerErrors(t *testing.T) {
	net, _ := buildNetwork(t, 1, 10, 42)
	if err := net.FailPeer("ghost"); err == nil {
		t.Fatalf("failing unknown peer must error")
	}
	if err := net.FailPeer(net.PeerIDs()[0]); err == nil {
		t.Fatalf("failing the last peer must error")
	}
}

func TestCrashRecoveryFullReplica(t *testing.T) {
	net, r := buildNetwork(t, 10, 1<<30, 43)
	corpus := workload.GridCorpus(200)
	for _, k := range corpus {
		if err := net.InsertKey(k, r); err != nil {
			t.Fatal(err)
		}
	}
	// Crash three peers with a replication tick before each failure:
	// successor replication tolerates one failure per replication
	// window (the crash also destroys the replica set the victim held
	// for its predecessor, and a host and its successor dying in one
	// window lose the single replica).
	restored := 0
	for i := 0; i < 3; i++ {
		net.Replicate()
		ids := net.PeerIDs()
		if err := net.FailPeer(ids[r.Intn(len(ids))]); err != nil {
			t.Fatal(err)
		}
		got, lost := net.Recover()
		if len(lost) != 0 {
			t.Fatalf("fully replicated crash %d lost nodes %v", i, lost)
		}
		restored += got
	}
	if restored == 0 {
		t.Fatalf("nothing restored")
	}
	mustValidate(t, net)
	for _, k := range corpus {
		if res := net.DiscoverRandom(k, false, r); !res.Satisfied {
			t.Fatalf("key %q lost after recovery", k)
		}
	}
}

func TestCrashRecoveryPartialReplica(t *testing.T) {
	net, r := buildNetwork(t, 10, 1<<30, 44)
	corpus := workload.GridCorpus(300)
	replicated := corpus[:200]
	late := corpus[200:]
	for _, k := range replicated {
		if err := net.InsertKey(k, r); err != nil {
			t.Fatal(err)
		}
	}
	net.Replicate()
	// Insertions after the snapshot are at risk.
	for _, k := range late {
		if err := net.InsertKey(k, r); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		ids := net.PeerIDs()
		if err := net.FailPeer(ids[r.Intn(len(ids))]); err != nil {
			t.Fatal(err)
		}
	}
	_, lost := net.Recover()
	mustValidate(t, net)
	lostSet := make(map[keys.Key]bool, len(lost))
	for _, k := range lost {
		lostSet[k] = true
	}
	// Every replicated key survives unless both its host and the
	// successor holding its replica crashed in this window — in which
	// case the loss report must name it.
	for _, k := range replicated {
		if res := net.DiscoverRandom(k, false, r); !res.Satisfied && !lostSet[k] {
			t.Fatalf("replicated key %q lost without being reported", k)
		}
	}
	// Late keys either survive (their host did not crash) or are
	// cleanly absent — discovery must terminate without error.
	missing := 0
	for _, k := range late {
		res := net.DiscoverRandom(k, false, r)
		if !res.Satisfied {
			missing++
			// The loss report must name every missing key precisely.
			if !lostSet[k] {
				t.Fatalf("missing key %q not in the lost set %v", k, lost)
			}
			// A lost key can be re-declared.
			if err := net.InsertKey(k, r); err != nil {
				t.Fatalf("re-insert of %q: %v", k, err)
			}
		}
	}
	t.Logf("late keys missing after crash: %d/%d (store lost %d nodes)",
		missing, len(late), len(lost))
	mustValidate(t, net)
	for _, k := range late {
		if res := net.DiscoverRandom(k, false, r); !res.Satisfied {
			t.Fatalf("re-declared key %q still missing", k)
		}
	}
}

func TestCrashWithoutAnyReplication(t *testing.T) {
	net, r := buildNetwork(t, 8, 1<<30, 45)
	corpus := workload.GridCorpus(150)
	for _, k := range corpus {
		if err := net.InsertKey(k, r); err != nil {
			t.Fatal(err)
		}
	}
	ids := net.PeerIDs()
	if err := net.FailPeer(ids[0]); err != nil {
		t.Fatal(err)
	}
	restored, _ := net.Recover()
	if restored != 0 {
		t.Fatalf("nothing was replicated, yet %d restored", restored)
	}
	mustValidate(t, net)
	// Survivors remain discoverable.
	found := 0
	for _, k := range corpus {
		if res := net.DiscoverRandom(k, false, r); res.Satisfied {
			found++
		}
	}
	if found == 0 {
		t.Fatalf("all keys lost from one crash")
	}
}

func TestRepeatedCrashRecoverCycles(t *testing.T) {
	net, r := buildNetwork(t, 12, 1<<30, 46)
	corpus := workload.GridCorpus(250)
	for _, k := range corpus {
		if err := net.InsertKey(k, r); err != nil {
			t.Fatal(err)
		}
	}
	for cycle := 0; cycle < 6; cycle++ {
		net.Replicate()
		ids := net.PeerIDs()
		if err := net.FailPeer(ids[r.Intn(len(ids))]); err != nil {
			t.Fatal(err)
		}
		if _, lost := net.Recover(); len(lost) != 0 {
			t.Fatalf("cycle %d lost replicated nodes %v", cycle, lost)
		}
		// Replace the capacity by joining a fresh peer (repair must
		// precede tree-routed operations).
		if err := net.JoinPeer(keys.LowerAlnum.RandomKey(r, 12, 12), 1<<30, r); err != nil {
			t.Fatal(err)
		}
		mustValidate(t, net)
	}
	for _, k := range corpus {
		if res := net.DiscoverRandom(k, false, r); !res.Satisfied {
			t.Fatalf("key %q lost across cycles", k)
		}
	}
	if net.Replication.Failures != 6 {
		t.Fatalf("failure counter = %d", net.Replication.Failures)
	}
}

func TestRecoveryAfterRootHostCrash(t *testing.T) {
	net, r := buildNetwork(t, 6, 1<<30, 47)
	for _, k := range []keys.Key{"dgemm", "dgemv", "sgemm", "saxpy"} {
		if err := net.InsertKey(k, r); err != nil {
			t.Fatal(err)
		}
	}
	net.Replicate()
	rootKey, ok := net.Root()
	if !ok {
		t.Fatal("no root")
	}
	host, _ := net.HostOf(rootKey)
	if err := net.FailPeer(host); err != nil {
		t.Fatal(err)
	}
	if _, lost := net.Recover(); len(lost) != 0 {
		t.Fatalf("lost %v", lost)
	}
	mustValidate(t, net)
	if _, ok := net.Root(); !ok {
		t.Fatalf("root not restored")
	}
	for _, k := range []keys.Key{"dgemm", "dgemv", "sgemm", "saxpy"} {
		if res := net.DiscoverRandom(k, false, r); !res.Satisfied {
			t.Fatalf("key %q lost", k)
		}
	}
}

func TestRecoverNoFailureIsNoop(t *testing.T) {
	net, r := buildNetwork(t, 4, 1<<30, 48)
	for _, k := range workload.GridCorpus(40) {
		if err := net.InsertKey(k, r); err != nil {
			t.Fatal(err)
		}
	}
	net.Replicate()
	restored, lost := net.Recover()
	if restored != 0 || len(lost) != 0 {
		t.Fatalf("no-failure recover restored=%d lost=%v", restored, lost)
	}
	mustValidate(t, net)
}

// TestPropCrashRecoveryRandomized drives random crash/recover cycles
// mixed with inserts and churn, validating after every event.
func TestPropCrashRecoveryRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(49))
	net, _ := buildNetwork(t, 10, 1<<30, 50)
	replicatedKeys := make(map[keys.Key]bool)
	var sinceSnapshot []keys.Key
	for step := 0; step < 120; step++ {
		switch r.Intn(6) {
		case 0, 1, 2:
			k := keys.LowerAlnum.RandomKey(r, 2, 8)
			if err := net.InsertKey(k, r); err != nil {
				t.Fatalf("step %d insert: %v", step, err)
			}
			sinceSnapshot = append(sinceSnapshot, k)
		case 3:
			net.Replicate()
			for _, k := range sinceSnapshot {
				replicatedKeys[k] = true
			}
			sinceSnapshot = nil
		case 4:
			if net.NumPeers() > 3 {
				ids := net.PeerIDs()
				if err := net.FailPeer(ids[r.Intn(len(ids))]); err != nil {
					t.Fatalf("step %d fail: %v", step, err)
				}
				net.Recover()
				// Keys inserted after the last snapshot may be gone.
				sinceSnapshot = nil
			}
		case 5:
			if err := net.JoinPeer(keys.LowerAlnum.RandomKey(r, 12, 12), 1<<30, r); err != nil {
				t.Fatalf("step %d join: %v", step, err)
			}
		}
		if err := net.Validate(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
	for k := range replicatedKeys {
		if res := net.DiscoverRandom(k, false, r); !res.Satisfied {
			t.Fatalf("replicated key %q lost", k)
		}
	}
}

// TestReplicaSuccessorPlacement pins the placement rule: after a
// Replicate tick every node's snapshot lives on its host's ring
// successor, never globally.
func TestReplicaSuccessorPlacement(t *testing.T) {
	net, r := buildNetwork(t, 8, 1<<30, 51)
	for _, k := range workload.GridCorpus(120) {
		if err := net.InsertKey(k, r); err != nil {
			t.Fatal(err)
		}
	}
	if n := net.Replicate(); n != net.NumNodes() {
		t.Fatalf("replicated %d of %d nodes", n, net.NumNodes())
	}
	if net.NumReplicas() != net.NumNodes() {
		t.Fatalf("replica store holds %d of %d nodes", net.NumReplicas(), net.NumNodes())
	}
	for _, id := range net.PeerIDs() {
		p, _ := net.Peer(id)
		succ, _ := net.Ring().Successor(id)
		for k := range p.Nodes {
			loc, ok := net.ReplicaHolder(k)
			if !ok {
				t.Fatalf("node %q has no replica", k)
			}
			if loc != succ {
				t.Fatalf("replica of %q (host %q) on %q, want successor %q", k, id, loc, succ)
			}
		}
	}
	mustValidate(t, net)
}

// TestReplicaRehomingOnChurn requires topology changes to move the
// affected replica sets and pay for it: joins and leaves after a
// replication tick must produce nonzero transfer traffic, and the
// successor rule must hold again afterwards.
func TestReplicaRehomingOnChurn(t *testing.T) {
	net, r := buildNetwork(t, 6, 1<<30, 52)
	for _, k := range workload.GridCorpus(150) {
		if err := net.InsertKey(k, r); err != nil {
			t.Fatal(err)
		}
	}
	net.Replicate()
	base := net.Replication
	for i := 0; i < 4; i++ {
		if err := net.JoinPeer(keys.LowerAlnum.RandomKey(r, 12, 12), 1<<30, r); err != nil {
			t.Fatal(err)
		}
		mustValidate(t, net)
	}
	afterJoins := net.Replication
	if afterJoins.TransferredNodes <= base.TransferredNodes {
		t.Fatalf("joins moved no replicas: %+v", afterJoins)
	}
	ids := net.PeerIDs()
	if err := net.LeavePeer(ids[r.Intn(len(ids))]); err != nil {
		t.Fatal(err)
	}
	mustValidate(t, net)
	if net.Replication.TransferMsgs <= afterJoins.TransferMsgs {
		t.Fatalf("leave moved no replica batches: %+v", net.Replication)
	}
}

// TestCrashLosesHeldReplicaSet pins the successor-replication
// trade-off: crashing a peer loses the replica set it held for its
// predecessor, so the predecessor's nodes are unprotected until the
// next Replicate — but the crashed peer's own nodes recover from
// their replicas on its successor.
func TestCrashLosesHeldReplicaSet(t *testing.T) {
	net, r := buildNetwork(t, 6, 1<<30, 53)
	for _, k := range workload.GridCorpus(100) {
		if err := net.InsertKey(k, r); err != nil {
			t.Fatal(err)
		}
	}
	net.Replicate()
	total := net.NumReplicas()
	// Find a victim that holds a non-empty replica set.
	var victim keys.Key
	held := 0
	for _, id := range net.PeerIDs() {
		p, _ := net.Peer(id)
		if p.NumReplicas() > 0 {
			victim, held = id, p.NumReplicas()
			break
		}
	}
	if held == 0 {
		t.Fatal("no peer holds replicas")
	}
	if err := net.FailPeer(victim); err != nil {
		t.Fatal(err)
	}
	if got := net.NumReplicas(); got != total-held {
		t.Fatalf("replica store %d after crash, want %d-%d", got, total, held)
	}
	if _, lost := net.Recover(); len(lost) != 0 {
		t.Fatalf("replicated crash lost %v", lost)
	}
	mustValidate(t, net)
	// The next tick re-protects everything.
	net.Replicate()
	if net.NumReplicas() != net.NumNodes() {
		t.Fatalf("re-replication incomplete: %d of %d", net.NumReplicas(), net.NumNodes())
	}
	mustValidate(t, net)
}

// TestRecoverReportsLostKeysExactly crashes a peer holding keys
// declared after the last snapshot and requires the lost-key report
// to name exactly the keys that vanished.
func TestRecoverReportsLostKeysExactly(t *testing.T) {
	net, r := buildNetwork(t, 5, 1<<30, 54)
	for _, k := range workload.GridCorpus(60) {
		if err := net.InsertKey(k, r); err != nil {
			t.Fatal(err)
		}
	}
	net.Replicate()
	late := []keys.Key{"zzlate0", "zzlate1", "zzlate2", "zzlate3", "zzlate4", "zzlate5"}
	for _, k := range late {
		if err := net.InsertKey(k, r); err != nil {
			t.Fatal(err)
		}
	}
	// Crash the host of the late keys' region.
	host, _ := net.HostOf("zzlate0")
	if err := net.FailPeer(host); err != nil {
		t.Fatal(err)
	}
	_, lost := net.Recover()
	mustValidate(t, net)
	lostSet := make(map[keys.Key]bool, len(lost))
	for _, k := range lost {
		lostSet[k] = true
	}
	for _, k := range late {
		res := net.DiscoverRandom(k, false, r)
		if res.Satisfied == lostSet[k] {
			t.Fatalf("key %q: satisfied=%v but lost-set=%v (%v)",
				k, res.Satisfied, lostSet[k], lost)
		}
	}
}

// TestPersistStateUnion pins the snapshot content rule: the durable
// state is the union of the replica store and the live tree's data
// nodes, so a key declared after the last Replicate is persisted (it
// has no replica yet) and a crashed, unrecovered key is persisted too
// (it exists only as a replica).
func TestPersistStateUnion(t *testing.T) {
	net, r := buildNetwork(t, 5, 1<<30, 55)
	for _, k := range workload.GridCorpus(40) {
		if err := net.InsertKey(k, r); err != nil {
			t.Fatal(err)
		}
	}
	net.Replicate()
	if err := net.InsertKey("zzfreshkey", r); err != nil {
		t.Fatal(err)
	}
	host, _ := net.HostOf("aces4")
	if err := net.FailPeer(host); err != nil {
		t.Fatal(err)
	}
	_, nodes := net.PersistState()
	have := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		have[n.Key] = true
	}
	if !have["zzfreshkey"] {
		t.Fatal("unreplicated live key missing from persist state")
	}
	// Every replicated key survives in the persist state even while
	// its host is crashed and unrecovered.
	for _, k := range workload.GridCorpus(40) {
		if !have[string(k)] {
			t.Fatalf("replicated key %q missing from persist state", k)
		}
	}
}
