package core

import (
	"fmt"
	"math/rand"
	"sort"

	"dlpt/internal/keys"
)

// Discover routes a discovery request for key k, entering the tree at
// the given node (Section 2: "the request moves upward until reaching
// a node whose subtree contains the requested node and then moves
// downward to this node"). When gated is true the request consumes
// peer capacity at every node visit and is ignored by saturated
// peers (Section 4's request model); maintenance-style lookups pass
// gated=false.
func (net *Network) Discover(k keys.Key, entry keys.Key, gated bool) RequestResult {
	res := RequestResult{Key: k}
	cur, host, ok := net.nodeState(entry)
	if !ok {
		res.NotFound = true
		return res
	}
	goingUp := true
	for {
		// The current node receives the request.
		cur.LoadCur++
		if gated {
			if host.Saturated() {
				res.Dropped = true
				net.Counters.DroppedVisits++
				return res
			}
			host.Processed++
		}
		net.Counters.DiscoveryVisits++

		if cur.Key == k {
			// A structural node (no data) means the key was never
			// declared: the discovery fails.
			if cur.HasData() {
				res.Satisfied = true
			} else {
				res.NotFound = true
			}
			return res
		}
		if goingUp && keys.IsPrefix(cur.Key, k) {
			goingUp = false
		}
		var next keys.Key
		if goingUp {
			if !cur.HasFather {
				// Root does not prefix k: the key cannot exist.
				res.NotFound = true
				return res
			}
			next = cur.Father
		} else {
			q, ok := cur.BestChildFor(k)
			if !ok || !keys.IsPrefix(q, k) {
				// No branch leads towards k: absent key.
				res.NotFound = true
				return res
			}
			next = q
		}
		nextNode, nextHost, ok := net.nodeState(next)
		if !ok {
			res.NotFound = true
			return res
		}
		res.LogicalHops++
		if nextHost.ID != host.ID {
			res.PhysicalHops++
		}
		cur, host = nextNode, nextHost
	}
}

// DiscoverRandom routes a discovery request entering at a uniformly
// random tree node, as in the paper's experiments.
func (net *Network) DiscoverRandom(k keys.Key, gated bool, r *rand.Rand) RequestResult {
	entry, ok := net.RandomNodeKey(r)
	if !ok {
		return RequestResult{Key: k, NotFound: true}
	}
	return net.Discover(k, entry, gated)
}

// Lookup returns the values registered under k, routing ungated from
// a random entry point. It is the read-side operation of the public
// API.
func (net *Network) Lookup(k keys.Key, r *rand.Rand) ([]string, bool) {
	res := net.DiscoverRandom(k, false, r)
	if !res.Satisfied {
		return nil, false
	}
	n, _, ok := net.nodeState(k)
	if !ok {
		return nil, false
	}
	out := make([]string, 0, len(n.Data))
	for v := range n.Data {
		out = append(out, v)
	}
	sort.Strings(out)
	return out, true
}

// Values returns the values stored under k by direct state access on
// the owner peer (no routing, no cost accounting). Engines use it to
// read a node's data after a discovery already routed to it. The
// values come back sorted: they cross the wire in responses, so the
// set's presentation must not leak map order.
func (net *Network) Values(k keys.Key) ([]string, bool) {
	n, _, ok := net.nodeState(k)
	if !ok || !n.HasData() {
		return nil, false
	}
	out := make([]string, 0, len(n.Data))
	for v := range n.Data {
		out = append(out, v)
	}
	sort.Strings(out)
	return out, true
}

// String summarizes the network.
func (net *Network) String() string {
	return fmt.Sprintf("dlpt{%s, peers=%d, nodes=%d}",
		net.Placement, net.NumPeers(), net.NumNodes())
}
