package core

import (
	"math/rand"
	"strconv"
	"time"

	"dlpt/internal/keys"
	"dlpt/internal/obs"
	"dlpt/internal/trace"
)

// QueryResult reports the outcome of a multi-key query (range or
// completion) routed through the overlay.
type QueryResult struct {
	// Keys are the matching data-holding keys in lexicographic order.
	Keys []keys.Key
	// LogicalHops counts tree edges traversed, including the subtree
	// traversal (the paper resolves it by parallelizing over
	// branches; the counter totals all branch messages).
	LogicalHops int
	// PhysicalHops counts traversed edges crossing peers.
	PhysicalHops int
	// NodesVisited counts tree nodes touched.
	NodesVisited int
}

// QuerySpec describes one subtree query: automatic completion of a
// partial search string (Range=false) or a lexicographic range query
// (Range=true), optionally bounded by Limit.
type QuerySpec struct {
	Range  bool
	Prefix keys.Key // completion: every declared key extending Prefix
	Lo, Hi keys.Key // range: every declared key in [Lo, Hi]
	// Limit bounds the number of keys the walk yields; the traversal
	// stops as soon as Limit matches have been found (limit pushdown).
	// Limit <= 0 means unlimited.
	Limit int
}

// RangeQuery resolves the range query [lo, hi]: the request enters at
// a random node, climbs to the deepest node whose subtree spans the
// whole interval, and the subtree is traversed with pruning — the
// multi-branch resolution the DLPT supports (Section 2). Ungated:
// like the paper, only unit discovery requests consume capacity.
func (net *Network) RangeQuery(lo, hi keys.Key, r *rand.Rand) QueryResult {
	return net.runQuery(QuerySpec{Range: true, Lo: lo, Hi: hi}, r)
}

// Complete resolves automatic completion of the partial search string
// prefix: all declared keys extending it, collected from the subtree
// of the deepest node prefixing it.
func (net *Network) Complete(prefix keys.Key, r *rand.Rand) QueryResult {
	return net.runQuery(QuerySpec{Prefix: prefix}, r)
}

// runQuery drives a walker to exhaustion in one go (the slice path;
// the engines' streaming paths drive the same walker incrementally).
func (net *Network) runQuery(spec QuerySpec, r *rand.Rand) QueryResult {
	w := NewQueryWalker(net, spec)
	if w.Empty() {
		return QueryResult{}
	}
	entry, ok := net.RandomNodeKey(r)
	if !ok {
		return QueryResult{}
	}
	w.Start(entry)
	var ks []keys.Key
	for {
		var more bool
		ks, more = w.StepN(ks, 0, 1<<30)
		if !more {
			break
		}
	}
	res := w.Stats()
	res.Keys = ks
	return res
}

// walker phases.
const (
	phaseClimb = iota
	phaseDescend
	phaseWalk
	phaseDone
)

// walkFrame is one pending subtree node of the traversal: the node
// key plus the host of the tree edge it was reached over (the
// physical-hop accounting input).
type walkFrame struct {
	key  keys.Key
	from keys.Key // host id of the parent node; ε for the subtree root
	root bool     // subtree root: already counted during climb/descend
}

// QueryWalker performs the climb / descend / pruned-subtree traversal
// of a subtree query one bounded batch at a time, yielding matches in
// lexicographic order as the walk discovers them. Callers drive it
// with StepN under whatever locking their engine requires and simply
// stop calling it to terminate early — the walker never touches nodes
// beyond the last batch, which is what makes limit pushdown and
// consumer cancellation cut the traversal cost instead of hiding it.
type QueryWalker struct {
	net     *Network
	anchor  keys.Key
	match   func(keys.Key) bool
	explore func(keys.Key) bool
	limit   int
	empty   bool

	phase   int
	cur     keys.Key // current node during climb/descend
	curHost keys.Key // its host id
	stack   []walkFrame
	emitted int
	res     QueryResult // hop/visit counters; Keys unused

	// Instrumentation (inherited from Network.Obs/Tracer; both
	// nil-safe). parent is the trace context phase spans hang under —
	// zero starts a fresh trace, the tcp engine sets the wire context.
	met       *obs.Metrics
	rec       *trace.Recorder
	parent    trace.Context
	span      trace.Handle
	phName    string
	phHops    int
	phStart   time.Time
	visitBase int
}

// NewQueryWalker builds the walker for spec. An inverted range yields
// the empty walker (Empty reports true) without consuming an entry
// point, matching the slice path.
func NewQueryWalker(net *Network, spec QuerySpec) *QueryWalker {
	w := &QueryWalker{net: net, limit: spec.Limit, phase: phaseDone,
		met: net.Obs, rec: net.Tracer}
	if spec.Range {
		if spec.Hi < spec.Lo {
			w.empty = true
			return w
		}
		lo, hi := spec.Lo, spec.Hi
		w.anchor = keys.GCP(lo, hi)
		w.match = func(k keys.Key) bool { return lo <= k && k <= hi }
		w.explore = func(label keys.Key) bool {
			// Prune subtrees entirely outside [lo,hi] (see trie.Range).
			if label > hi {
				return false
			}
			if label < lo && !keys.IsProperPrefix(label, lo) {
				return false
			}
			return true
		}
		return w
	}
	prefix := spec.Prefix
	w.anchor = prefix
	w.match = func(k keys.Key) bool { return keys.IsPrefix(prefix, k) }
	w.explore = func(label keys.Key) bool {
		return keys.IsPrefix(prefix, label) || keys.IsPrefix(label, prefix)
	}
	return w
}

// Empty reports whether the query is void by construction (inverted
// range): no entry point is needed and the walk yields nothing.
func (w *QueryWalker) Empty() bool { return w.empty }

// Start enters the tree at the given node key (normally a
// RandomNodeKey draw performed under the caller's lock).
func (w *QueryWalker) Start(entry keys.Key) {
	if w.empty {
		return
	}
	_, h, ok := w.net.nodeState(entry)
	if !ok {
		return
	}
	w.res.NodesVisited++
	w.cur = entry
	w.curHost = h.ID
	w.phase = phaseClimb
	w.enterPhase(obs.PhaseClimb, h.ID)
}

// TraceUnder parents this walker's phase spans beneath an externally
// propagated trace context (the tcp engine passes the wire context so
// server-side walk spans join the client's trace). Call before Start
// or ResumeWalk.
func (w *QueryWalker) TraceUnder(parent trace.Context) { w.parent = parent }

// enterPhase closes the running phase span (if any) and opens the
// next one. No-op unless the walker is instrumented.
func (w *QueryWalker) enterPhase(name string, peer keys.Key) {
	if w.met == nil && w.rec == nil {
		return
	}
	w.closePhase()
	w.phName = name
	w.phHops = w.res.LogicalHops
	w.phStart = time.Now() //dlptlint:ignore determinism span timing feeds metrics only, never wire values
	w.span = w.rec.Start(w.parent, name, string(peer))
}

// closePhase ends the running phase span and folds its hop count and
// duration into the phase metrics.
func (w *QueryWalker) closePhase() {
	if w.phName == "" {
		return
	}
	hops := w.res.LogicalHops - w.phHops
	//dlptlint:ignore determinism phase duration feeds metrics only, never wire values
	w.met.RecordPhase(w.phName, hops, time.Since(w.phStart))
	if w.span.Active() {
		w.span.SetAttr("hops", strconv.Itoa(hops))
		w.span.End()
	}
	w.phName = ""
}

// FinishTrace flushes the walker's instrumentation: the open phase
// span ends and the visit delta folds into the visit counter.
// Idempotent; the walker calls it itself when the traversal reaches
// its natural end, engines call it when a consumer abandons the walk
// early.
func (w *QueryWalker) FinishTrace() {
	if w.met == nil && w.rec == nil {
		return
	}
	w.closePhase()
	if w.met != nil {
		w.met.Visits.Add(float64(w.res.NodesVisited - w.visitBase))
		w.visitBase = w.res.NodesVisited
	}
}

// done ends the traversal, flushing instrumentation.
func (w *QueryWalker) done() {
	w.phase = phaseDone
	w.FinishTrace()
}

// Stats returns the hop and visit counters accumulated so far.
func (w *QueryWalker) Stats() QueryResult {
	return QueryResult{
		LogicalHops:  w.res.LogicalHops,
		PhysicalHops: w.res.PhysicalHops,
		NodesVisited: w.res.NodesVisited,
	}
}

// StepN advances the traversal by at most maxVisits node visits,
// appending matched keys to out (maxEmit > 0 additionally caps the
// keys appended in this batch). It returns the extended slice and
// whether the traversal can continue. Callers hold whatever lock
// guards the network for the duration of one call; node state is
// re-fetched on every visit, so churn between calls degrades the walk
// (skipped subtrees) rather than corrupting it — the same behaviour a
// hop-by-hop discovery has on a degraded tree.
func (w *QueryWalker) StepN(out []keys.Key, maxEmit, maxVisits int) ([]keys.Key, bool) {
	if maxVisits <= 0 {
		maxVisits = 1
	}
	visits, batchEmitted := 0, 0
	for visits < maxVisits {
		switch w.phase {
		case phaseDone:
			return out, false

		case phaseClimb:
			n, h, ok := w.net.nodeState(w.cur)
			if !ok {
				w.done()
				return out, false
			}
			w.curHost = h.ID
			// Climb until the current node's subtree covers the
			// anchor (its label is a prefix of the anchor), or the root.
			if keys.IsPrefix(n.Key, w.anchor) || !n.HasFather {
				w.phase = phaseDescend
				w.enterPhase(obs.PhaseDescend, w.curHost)
				continue
			}
			next, nextHost, ok := w.net.nodeState(n.Father)
			if !ok {
				w.done()
				return out, false
			}
			w.res.LogicalHops++
			w.res.NodesVisited++
			visits++
			if nextHost.ID != h.ID {
				w.res.PhysicalHops++
			}
			w.cur, w.curHost = next.Key, nextHost.ID

		case phaseDescend:
			// Descend towards the anchor while a single child still
			// covers the whole query (narrowing the traversal root).
			n, h, ok := w.net.nodeState(w.cur)
			if !ok {
				w.done()
				return out, false
			}
			w.curHost = h.ID
			q, ok := n.BestChildFor(w.anchor)
			if !ok || !keys.IsPrefix(q, w.anchor) {
				w.beginWalk(n)
				continue
			}
			next, nextHost, okn := w.net.nodeState(q)
			if !okn {
				w.beginWalk(n)
				continue
			}
			w.res.LogicalHops++
			w.res.NodesVisited++
			visits++
			if nextHost.ID != h.ID {
				w.res.PhysicalHops++
			}
			w.cur, w.curHost = next.Key, nextHost.ID

		case phaseWalk:
			if len(w.stack) == 0 {
				w.done()
				return out, false
			}
			fr := w.stack[len(w.stack)-1]
			w.stack = w.stack[:len(w.stack)-1]
			n, h, ok := w.net.nodeState(fr.key)
			if !ok {
				continue // pruned by churn/crash: skip, as the slice path does
			}
			if !fr.root {
				w.res.LogicalHops++
				w.res.NodesVisited++
				visits++
				if h.ID != fr.from {
					w.res.PhysicalHops++
				}
			}
			if n.HasData() && w.match(n.Key) {
				out = append(out, n.Key)
				w.emitted++
				batchEmitted++
				if w.limit > 0 && w.emitted >= w.limit {
					w.done()
					return out, false
				}
				if maxEmit > 0 && batchEmitted >= maxEmit {
					w.pushChildren(n, h.ID)
					return out, true
				}
			}
			w.pushChildren(n, h.ID)
		}
	}
	return out, w.phase != phaseDone
}

// ResumeWalk seeds the subtree traversal directly at a covering node
// that the climb/descend phases resolved elsewhere — the tcp engine
// relays those phases hop-by-hop between listeners and only then
// opens the stream at the anchor's host. pre carries the counters the
// route accumulated, so the stream's totals match a walker that ran
// all three phases against one tree. An anchor pruned by churn since
// the route resolved it ends the walk empty, exactly as a vanished
// entry node does in Start.
func (w *QueryWalker) ResumeWalk(anchor keys.Key, pre QueryResult) {
	if w.empty {
		return
	}
	w.res.LogicalHops = pre.LogicalHops
	w.res.PhysicalHops = pre.PhysicalHops
	w.res.NodesVisited = pre.NodesVisited
	// The route's hops and visits were accounted where they ran (the
	// QROUTE legs); the visit counter folds only this walker's own.
	w.visitBase = pre.NodesVisited
	w.phHops = pre.LogicalHops
	n, h, ok := w.net.nodeState(anchor)
	if !ok {
		w.done()
		return
	}
	w.curHost = h.ID
	w.beginWalk(n)
}

// NodeHosted reports whether k is a live, hosted tree node — the
// visibility test the walker applies before stepping to a node, made
// available to the hop-by-hop route relays.
func (net *Network) NodeHosted(k keys.Key) bool {
	_, _, ok := net.nodeState(k)
	return ok
}

// beginWalk seeds the subtree traversal at the covering node reached
// by the climb/descend phases (already counted as visited there).
func (w *QueryWalker) beginWalk(n *Node) {
	w.phase = phaseWalk
	w.enterPhase(obs.PhaseWalk, w.curHost)
	w.stack = w.stack[:0]
	if w.explore(n.Key) || w.match(n.Key) {
		w.stack = append(w.stack, walkFrame{key: n.Key, root: true})
	}
}

// pushChildren stacks n's explorable children so they pop in
// ascending label order — the invariant behind the stream's
// lexicographic yield order. The newly pushed segment is sorted in
// place (descending, LIFO) to avoid the per-node sorted-copy
// allocation.
func (w *QueryWalker) pushChildren(n *Node, host keys.Key) {
	base := len(w.stack)
	for c := range n.Children {
		if !w.explore(c) {
			continue
		}
		//dlptlint:ignore determinism the segment is canonicalized by the insertion sort below
		w.stack = append(w.stack, walkFrame{key: c, from: host})
	}
	seg := w.stack[base:]
	// Insertion sort, descending by key: child fan-out is small.
	for i := 1; i < len(seg); i++ {
		for j := i; j > 0 && seg[j].key > seg[j-1].key; j-- {
			seg[j], seg[j-1] = seg[j-1], seg[j]
		}
	}
}
