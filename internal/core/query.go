package core

import (
	"math/rand"

	"dlpt/internal/keys"
)

// QueryResult reports the outcome of a multi-key query (range or
// completion) routed through the overlay.
type QueryResult struct {
	// Keys are the matching data-holding keys in lexicographic order.
	Keys []keys.Key
	// LogicalHops counts tree edges traversed, including the subtree
	// traversal (the paper resolves it by parallelizing over
	// branches; the counter totals all branch messages).
	LogicalHops int
	// PhysicalHops counts traversed edges crossing peers.
	PhysicalHops int
	// NodesVisited counts tree nodes touched.
	NodesVisited int
}

// RangeQuery resolves the range query [lo, hi]: the request enters at
// a random node, climbs to the deepest node whose subtree spans the
// whole interval, and the subtree is traversed with pruning — the
// multi-branch resolution the DLPT supports (Section 2). Ungated:
// like the paper, only unit discovery requests consume capacity.
func (net *Network) RangeQuery(lo, hi keys.Key, r *rand.Rand) QueryResult {
	if hi < lo {
		return QueryResult{}
	}
	anchor := keys.GCP(lo, hi)
	return net.subtreeQuery(r, anchor, func(k keys.Key) bool {
		return lo <= k && k <= hi
	}, func(label keys.Key) bool {
		// Prune subtrees entirely outside [lo,hi] (see trie.Range).
		if label > hi {
			return false
		}
		if label < lo && !keys.IsProperPrefix(label, lo) {
			return false
		}
		return true
	})
}

// Complete resolves automatic completion of the partial search string
// prefix: all declared keys extending it, collected from the subtree
// of the deepest node prefixing it.
func (net *Network) Complete(prefix keys.Key, r *rand.Rand) QueryResult {
	return net.subtreeQuery(r, prefix, func(k keys.Key) bool {
		return keys.IsPrefix(prefix, k)
	}, func(label keys.Key) bool {
		return keys.IsPrefix(prefix, label) || keys.IsPrefix(label, prefix)
	})
}

// subtreeQuery climbs from a random entry node to the highest node
// relevant for the query anchor, then walks the relevant subtree.
// match selects result keys; explore prunes subtrees by their root
// label.
func (net *Network) subtreeQuery(r *rand.Rand, anchor keys.Key,
	match func(keys.Key) bool, explore func(keys.Key) bool) QueryResult {

	var res QueryResult
	entry, ok := net.RandomNodeKey(r)
	if !ok {
		return res
	}
	cur, host, ok := net.nodeState(entry)
	if !ok {
		return res
	}
	res.NodesVisited++
	// Phase 1: climb until the current node's subtree covers the
	// anchor (its label is a prefix of the anchor), or the root.
	for !keys.IsPrefix(cur.Key, anchor) && cur.HasFather {
		next, nextHost, ok := net.nodeState(cur.Father)
		if !ok {
			return res
		}
		res.LogicalHops++
		res.NodesVisited++
		if nextHost.ID != host.ID {
			res.PhysicalHops++
		}
		cur, host = next, nextHost
	}
	// Phase 2: descend towards the anchor while a single child still
	// covers the whole query (narrowing the traversal root).
	for {
		q, ok := cur.BestChildFor(anchor)
		if !ok || !keys.IsPrefix(q, anchor) {
			break
		}
		next, nextHost, okn := net.nodeState(q)
		if !okn {
			break
		}
		res.LogicalHops++
		res.NodesVisited++
		if nextHost.ID != host.ID {
			res.PhysicalHops++
		}
		cur, host = next, nextHost
	}
	// Phase 3: traverse the subtree with pruning, counting one
	// message per tree edge (the paper parallelizes the branches; the
	// totals are the aggregate traffic).
	var walk func(n *Node, p *Peer)
	walk = func(n *Node, p *Peer) {
		if n.HasData() && match(n.Key) {
			res.Keys = append(res.Keys, n.Key)
		}
		// Branch visit order is immaterial — the hop counters are
		// order-independent sums and the keys are sorted below — so
		// iterate the child set directly instead of allocating a
		// sorted copy per visited node.
		for c := range n.Children {
			if !explore(c) {
				continue
			}
			cn, cp, ok := net.nodeState(c)
			if !ok {
				continue
			}
			res.LogicalHops++
			res.NodesVisited++
			if cp.ID != p.ID {
				res.PhysicalHops++
			}
			walk(cn, cp)
		}
	}
	if explore(cur.Key) || match(cur.Key) {
		walk(cur, host)
	}
	keys.SortKeys(res.Keys)
	return res
}
