// Package core implements the self-contained DLPT protocol of
// RR-6557 Section 3: a Proper Greatest Common Prefix tree of service
// keys maintained directly over a bidirectional ring of peers, with
// peer insertion routed through the tree (Algorithms 1-2), data
// insertion growing the tree (Algorithm 3), discovery routing, and
// capacity-limited request processing.
//
// The package is a deterministic, message-driven simulation core:
// protocol messages are processed from a FIFO queue so that the code
// keeps the shape of the paper's per-node and per-peer handlers. Two
// placements are provided: the lexicographic mapping contributed by
// the paper (host(n) = lowest peer id >= n, wrapping) and the hashed
// Chord-style mapping of the original DLPT (the "random mapping"
// baseline of Figure 9).
//
// Documented deviations from the paper's pseudo-code (see DESIGN.md):
//
//   - Algorithm 1 line 1.04 tests "P ∉ Prefixes(p)" while the text
//     says the upward phase stops at "a node that is a prefix of P or
//     the root"; we follow the text (stop when p prefixes P).
//   - Algorithm 3 line 3.30 sends the new sibling node with father p;
//     structurally its father is the newly created GCP(p,k) node, so
//     we use that.
//   - Algorithm 3's SearchingHost descent excludes the key being
//     placed itself from the candidate children (the paper enqueues
//     the message before adding the key to C_p, which a synchronous
//     queue would otherwise turn into a self-forwarding loop).
//   - After SearchingHost bottoms out, the paper hands the node to
//     the local peer; that peer is not always the key's successor, so
//     we finish with an explicit peer-level ring walk to the owner.
//     The walk is counted as maintenance traffic.
package core

import (
	"sort"
	"sync/atomic"

	"dlpt/internal/keys"
)

// Node is the state of one logical tree node, held by the peer
// currently hosting it. Father/children are node keys: the protocol
// routes between nodes through the placement, never through global
// tree knowledge.
type Node struct {
	Key       keys.Key
	Father    keys.Key
	HasFather bool
	Children  map[keys.Key]struct{}
	Data      map[string]struct{}

	// LoadCur counts requests received by this node during the
	// current time unit; LoadPrev is the previous unit's count (the
	// l_n of Section 3.3, the input of the MLT heuristic).
	LoadCur  int
	LoadPrev int

	// visits counts discovery visits recorded by the concurrent
	// engines, whose routing holds only a read lock and therefore
	// cannot touch LoadCur. ResetUnit folds it into the load history.
	visits atomic.Int64
}

// NewNodeState returns a node with the given key and no relations.
func NewNodeState(key keys.Key) *Node {
	return &Node{
		Key:      key,
		Children: make(map[keys.Key]struct{}),
		Data:     make(map[string]struct{}),
	}
}

// HasData reports whether any value is registered at the node.
func (n *Node) HasData() bool { return len(n.Data) > 0 }

// RecordVisit counts one discovery visit from a concurrent engine.
// Safe to call under a read lock.
func (n *Node) RecordVisit() { n.visits.Add(1) }

// Load returns the current-unit load including concurrently recorded
// visits.
func (n *Node) Load() int { return n.LoadCur + int(n.visits.Load()) }

// ChildrenSorted returns the child keys in ascending order.
func (n *Node) ChildrenSorted() []keys.Key {
	out := make([]keys.Key, 0, len(n.Children))
	for c := range n.Children {
		out = append(out, c)
	}
	keys.SortKeys(out)
	return out
}

// BestChildFor returns the child sharing a strictly longer prefix
// with k than the node itself (Algorithm 3 line 3.05). In a valid
// PGCP tree at most one such child exists.
func (n *Node) BestChildFor(k keys.Key) (keys.Key, bool) {
	base := len(keys.GCP(n.Key, k))
	var best keys.Key
	bestLen := base
	found := false
	for c := range n.Children {
		if l := len(keys.GCP(c, k)); l > bestLen {
			best, bestLen, found = c, l, true
		}
	}
	return best, found
}

// MaxChildAtMost returns the greatest child key strictly below bound
// (the SearchingHost descent rule, with the self-exclusion deviation
// documented above). The PeerJoin descent uses inclusive=true to
// allow q == bound as in Algorithm 1 line 1.12.
func (n *Node) MaxChildAtMost(bound keys.Key, inclusive bool) (keys.Key, bool) {
	var best keys.Key
	found := false
	for c := range n.Children {
		if c > bound || (!inclusive && c == bound) {
			continue
		}
		if !found || c > best {
			best, found = c, true
		}
	}
	return best, found
}

// NodeInfo is the serialized form of a node travelling inside
// SearchingHost / Host / YourInformation messages.
type NodeInfo struct {
	Key       keys.Key
	Father    keys.Key
	HasFather bool
	Children  []keys.Key
	Data      []string
	LoadPrev  int
	LoadCur   int
}

// infoOf captures a node's state for transfer. Concurrently recorded
// visits fold into the snapshot's current load; the original node
// either travels with the transfer or stays behind as a dormant
// replica, so the fold never double-counts a live node.
func infoOf(n *Node) NodeInfo {
	info := NodeInfo{
		Key:       n.Key,
		Father:    n.Father,
		HasFather: n.HasFather,
		Children:  n.ChildrenSorted(),
		LoadPrev:  n.LoadPrev,
		LoadCur:   n.Load(),
	}
	info.Data = make([]string, 0, len(n.Data))
	for v := range n.Data {
		info.Data = append(info.Data, v)
	}
	sort.Strings(info.Data)
	return info
}

// materialize rebuilds a Node from its transferred form.
func (info NodeInfo) materialize() *Node {
	n := NewNodeState(info.Key)
	n.Father = info.Father
	n.HasFather = info.HasFather
	for _, c := range info.Children {
		n.Children[c] = struct{}{}
	}
	for _, v := range info.Data {
		n.Data[v] = struct{}{}
	}
	n.LoadPrev = info.LoadPrev
	n.LoadCur = info.LoadCur
	return n
}
