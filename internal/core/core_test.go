package core

import (
	"math/rand"
	"reflect"
	"testing"

	"dlpt/internal/keys"
)

// buildNetwork creates a lexicographic-placement network with n peers
// of uniform capacity and returns it with its generator.
func buildNetwork(t *testing.T, n, capacity int, seed int64) (*Network, *rand.Rand) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	net := NewNetwork(keys.LowerAlnum, PlacementLexicographic)
	for i := 0; i < n; i++ {
		id := keys.LowerAlnum.RandomKey(r, 12, 12)
		if err := net.JoinPeer(id, capacity, r); err != nil {
			t.Fatalf("join peer %d: %v", i, err)
		}
	}
	return net, r
}

func mustValidate(t *testing.T, net *Network) {
	t.Helper()
	if err := net.Validate(); err != nil {
		t.Fatalf("invalid network: %v", err)
	}
}

func TestBootstrapSinglePeer(t *testing.T) {
	net, _ := buildNetwork(t, 1, 10, 1)
	mustValidate(t, net)
	if net.NumPeers() != 1 {
		t.Fatalf("NumPeers = %d", net.NumPeers())
	}
	ids := net.PeerIDs()
	p, _ := net.Peer(ids[0])
	if p.Pred != p.ID || p.Succ != p.ID {
		t.Fatalf("sole peer must self-link: pred=%q succ=%q", p.Pred, p.Succ)
	}
}

func TestJoinManyPeersNoTree(t *testing.T) {
	net, _ := buildNetwork(t, 25, 10, 2)
	mustValidate(t, net)
	if net.NumPeers() != 25 {
		t.Fatalf("NumPeers = %d", net.NumPeers())
	}
}

func TestJoinRejectsDuplicatesAndBadInput(t *testing.T) {
	net, r := buildNetwork(t, 3, 10, 3)
	id := net.PeerIDs()[0]
	if err := net.JoinPeer(id, 10, r); err == nil {
		t.Fatalf("duplicate join must fail")
	}
	if err := net.JoinPeer("ok_id", 0, r); err == nil {
		t.Fatalf("non-positive capacity must fail")
	}
	if err := net.JoinPeer("BAD CAPS", 10, r); err == nil {
		t.Fatalf("id outside alphabet must fail")
	}
}

// TestPaperFigure1aDistributed inserts the binary keys of Figure 1(a)
// and checks the same tree emerges in distributed form.
func TestPaperFigure1aDistributed(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	net := NewNetwork(keys.Binary, PlacementLexicographic)
	for i := 0; i < 4; i++ {
		if err := net.JoinPeer(keys.Binary.RandomKey(r, 10, 10), 100, r); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range []keys.Key{"01", "10101", "10111", "101111"} {
		if err := net.InsertKey(k, r); err != nil {
			t.Fatal(err)
		}
		mustValidate(t, net)
	}
	snap := net.TreeSnapshot()
	want := []keys.Key{"", "01", "101", "10101", "10111", "101111"}
	if got := snap.Labels(); !reflect.DeepEqual(got, want) {
		t.Fatalf("labels = %v, want %v", got, want)
	}
	if root, ok := net.Root(); !ok || root != keys.Epsilon {
		t.Fatalf("root = %q, want ε", root)
	}
}

func TestInsertBeforeAnyPeerFails(t *testing.T) {
	net := NewNetwork(keys.Binary, PlacementLexicographic)
	r := rand.New(rand.NewSource(1))
	if err := net.InsertKey("01", r); err == nil {
		t.Fatalf("insert without peers must fail")
	}
}

func TestInsertRejectsBadAlphabet(t *testing.T) {
	net, r := buildNetwork(t, 2, 10, 5)
	if err := net.InsertKey("NOT_lower!", r); err == nil {
		t.Fatalf("key outside alphabet must fail")
	}
}

func TestInsertDuplicateKeyAccumulatesData(t *testing.T) {
	net, r := buildNetwork(t, 3, 10, 6)
	if err := net.InsertData("dgemm", "host1", r); err != nil {
		t.Fatal(err)
	}
	if err := net.InsertData("dgemm", "host2", r); err != nil {
		t.Fatal(err)
	}
	mustValidate(t, net)
	if net.NumNodes() != 1 {
		t.Fatalf("NumNodes = %d, want 1", net.NumNodes())
	}
	vals, ok := net.Lookup("dgemm", r)
	if !ok || len(vals) != 2 {
		t.Fatalf("Lookup = %v, %v", vals, ok)
	}
}

func TestRandomInsertsMatchReferenceTrie(t *testing.T) {
	net, r := buildNetwork(t, 10, 1000, 7)
	for i := 0; i < 300; i++ {
		k := keys.LowerAlnum.RandomKey(r, 1, 10)
		if err := net.InsertKey(k, r); err != nil {
			t.Fatalf("insert %q: %v", k, err)
		}
	}
	mustValidate(t, net) // includes the reference-trie differential check
	if net.NumNodes() < 300/2 {
		t.Fatalf("suspiciously few nodes: %d", net.NumNodes())
	}
}

func TestPeersJoinAfterTreeBuilt(t *testing.T) {
	net, r := buildNetwork(t, 2, 1000, 8)
	for i := 0; i < 120; i++ {
		if err := net.InsertKey(keys.LowerAlnum.RandomKey(r, 2, 8), r); err != nil {
			t.Fatal(err)
		}
	}
	before := net.NumNodes()
	for i := 0; i < 30; i++ {
		if err := net.JoinPeer(keys.LowerAlnum.RandomKey(r, 12, 12), 1000, r); err != nil {
			t.Fatalf("late join %d: %v", i, err)
		}
		mustValidate(t, net)
	}
	if net.NumNodes() != before {
		t.Fatalf("joins must not change the tree: %d -> %d", before, net.NumNodes())
	}
	if net.NumPeers() != 32 {
		t.Fatalf("NumPeers = %d", net.NumPeers())
	}
}

func TestLeavePeerTransfersNodes(t *testing.T) {
	net, r := buildNetwork(t, 8, 1000, 9)
	for i := 0; i < 100; i++ {
		if err := net.InsertKey(keys.LowerAlnum.RandomKey(r, 2, 8), r); err != nil {
			t.Fatal(err)
		}
	}
	nodes := net.NumNodes()
	for net.NumPeers() > 1 {
		ids := net.PeerIDs()
		if err := net.LeavePeer(ids[r.Intn(len(ids))]); err != nil {
			t.Fatalf("leave: %v", err)
		}
		mustValidate(t, net)
		if net.NumNodes() != nodes {
			t.Fatalf("leave lost nodes: %d -> %d", nodes, net.NumNodes())
		}
	}
}

func TestLeaveErrors(t *testing.T) {
	net, r := buildNetwork(t, 1, 10, 10)
	if err := net.LeavePeer("nonexistent_peer"); err == nil {
		t.Fatalf("leaving unknown peer must fail")
	}
	if err := net.InsertKey("abc", r); err != nil {
		t.Fatal(err)
	}
	if err := net.LeavePeer(net.PeerIDs()[0]); err == nil {
		t.Fatalf("last peer with nodes cannot leave")
	}
}

func TestLeaveLastPeerWithoutNodes(t *testing.T) {
	net, _ := buildNetwork(t, 1, 10, 11)
	if err := net.LeavePeer(net.PeerIDs()[0]); err != nil {
		t.Fatalf("empty last peer should leave: %v", err)
	}
	if net.NumPeers() != 0 {
		t.Fatalf("NumPeers = %d", net.NumPeers())
	}
}

func TestChurnInterleavedWithInserts(t *testing.T) {
	net, r := buildNetwork(t, 10, 1000, 12)
	for step := 0; step < 150; step++ {
		switch r.Intn(4) {
		case 0:
			if err := net.JoinPeer(keys.LowerAlnum.RandomKey(r, 12, 12), 1000, r); err != nil {
				t.Fatalf("step %d join: %v", step, err)
			}
		case 1:
			if net.NumPeers() > 3 {
				ids := net.PeerIDs()
				if err := net.LeavePeer(ids[r.Intn(len(ids))]); err != nil {
					t.Fatalf("step %d leave: %v", step, err)
				}
			}
		default:
			if err := net.InsertKey(keys.LowerAlnum.RandomKey(r, 1, 8), r); err != nil {
				t.Fatalf("step %d insert: %v", step, err)
			}
		}
		if err := net.Validate(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}

func TestDiscoverFindsEveryInsertedKey(t *testing.T) {
	net, r := buildNetwork(t, 12, 1000, 13)
	inserted := make(map[keys.Key]bool)
	for i := 0; i < 200; i++ {
		k := keys.LowerAlnum.RandomKey(r, 1, 9)
		if err := net.InsertKey(k, r); err != nil {
			t.Fatal(err)
		}
		inserted[k] = true
	}
	for k := range inserted {
		res := net.DiscoverRandom(k, false, r)
		if !res.Satisfied {
			t.Fatalf("key %q not found: %+v", k, res)
		}
		if res.PhysicalHops > res.LogicalHops {
			t.Fatalf("physical hops %d exceed logical %d", res.PhysicalHops, res.LogicalHops)
		}
	}
}

func TestDiscoverAbsentKey(t *testing.T) {
	net, r := buildNetwork(t, 4, 1000, 14)
	for _, k := range []keys.Key{"dgemm", "dgemv", "saxpy"} {
		if err := net.InsertKey(k, r); err != nil {
			t.Fatal(err)
		}
	}
	res := net.DiscoverRandom("zzgemm", false, r)
	if !res.NotFound || res.Satisfied {
		t.Fatalf("absent key must be NotFound: %+v", res)
	}
	// Absent key sharing a prefix with an existing one.
	res = net.DiscoverRandom("dgem", false, r)
	if !res.NotFound {
		t.Fatalf("dgem is structural-or-absent, must be NotFound: %+v", res)
	}
	if _, ok := net.Lookup("zz", r); ok {
		t.Fatalf("Lookup of absent key must fail")
	}
}

func TestDiscoverEmptyTree(t *testing.T) {
	net, r := buildNetwork(t, 2, 10, 15)
	res := net.DiscoverRandom("x", false, r)
	if !res.NotFound {
		t.Fatalf("discovery in empty tree must be NotFound")
	}
}

func TestCapacityGatingDropsRequests(t *testing.T) {
	net, r := buildNetwork(t, 2, 3, 16) // tiny capacity
	for _, k := range []keys.Key{"aaa", "aab", "aba", "abb"} {
		if err := net.InsertKey(k, r); err != nil {
			t.Fatal(err)
		}
	}
	net.ResetUnit()
	dropped, satisfied := 0, 0
	for i := 0; i < 50; i++ {
		res := net.DiscoverRandom("aaa", true, r)
		if res.Dropped {
			dropped++
		}
		if res.Satisfied {
			satisfied++
		}
	}
	if dropped == 0 {
		t.Fatalf("capacity 3 peers must drop some of 50 requests")
	}
	if satisfied == 0 {
		t.Fatalf("some requests must be satisfied before saturation")
	}
	if net.Counters.DroppedVisits == 0 {
		t.Fatalf("drop counter not incremented")
	}
	// After a unit reset, capacity is available again: a request
	// entering directly at its target (one visit) must be satisfied.
	net.ResetUnit()
	if res := net.Discover("aaa", "aaa", true); !res.Satisfied {
		t.Fatalf("fresh unit must satisfy a one-visit request: %+v", res)
	}
}

func TestLoadAccounting(t *testing.T) {
	net, r := buildNetwork(t, 2, 1000, 17)
	for _, k := range []keys.Key{"aa", "ab"} {
		if err := net.InsertKey(k, r); err != nil {
			t.Fatal(err)
		}
	}
	net.ResetUnit()
	for i := 0; i < 10; i++ {
		net.Discover("aa", "aa", true) // entry == target: 1 visit each
	}
	n, _, _ := net.nodeState("aa")
	if n.LoadCur != 10 {
		t.Fatalf("LoadCur = %d, want 10", n.LoadCur)
	}
	net.ResetUnit()
	if n.LoadPrev != 10 || n.LoadCur != 0 {
		t.Fatalf("after reset LoadPrev=%d LoadCur=%d", n.LoadPrev, n.LoadCur)
	}
}

func TestHashedPlacementBuildsSameTree(t *testing.T) {
	// Pre-generate identical peer ids and keys so that the two
	// placements see the same inputs regardless of how many random
	// draws their internal routing consumes.
	gen := rand.New(rand.NewSource(18))
	var ids, ks []keys.Key
	for i := 0; i < 8; i++ {
		ids = append(ids, keys.LowerAlnum.RandomKey(gen, 12, 12))
	}
	for i := 0; i < 150; i++ {
		ks = append(ks, keys.LowerAlnum.RandomKey(gen, 2, 8))
	}
	build := func(p Placement) *Network {
		r := rand.New(rand.NewSource(99))
		net := NewNetwork(keys.LowerAlnum, p)
		for _, id := range ids {
			if err := net.JoinPeer(id, 1000, r); err != nil {
				t.Fatal(err)
			}
		}
		for _, k := range ks {
			if err := net.InsertKey(k, r); err != nil {
				t.Fatal(err)
			}
		}
		return net
	}
	lex, hsh := build(PlacementLexicographic), build(PlacementHashed)
	mustValidate(t, lex)
	mustValidate(t, hsh)
	if !reflect.DeepEqual(lex.TreeSnapshot().Labels(), hsh.TreeSnapshot().Labels()) {
		t.Fatalf("placements must yield identical trees")
	}
}

func TestHashedChurn(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	net := NewNetwork(keys.LowerAlnum, PlacementHashed)
	for i := 0; i < 6; i++ {
		if err := net.JoinPeer(keys.LowerAlnum.RandomKey(r, 12, 12), 1000, r); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 80; i++ {
		if err := net.InsertKey(keys.LowerAlnum.RandomKey(r, 2, 8), r); err != nil {
			t.Fatal(err)
		}
	}
	for step := 0; step < 40; step++ {
		if r.Intn(2) == 0 {
			if err := net.JoinPeer(keys.LowerAlnum.RandomKey(r, 12, 12), 1000, r); err != nil {
				t.Fatal(err)
			}
		} else if net.NumPeers() > 2 {
			ids := net.PeerIDs()
			if err := net.LeavePeer(ids[r.Intn(len(ids))]); err != nil {
				t.Fatal(err)
			}
		}
		mustValidate(t, net)
	}
}

// TestLexicographicLocalityBeatsHashed verifies the Figure 9 premise:
// under the lexicographic mapping, strictly fewer tree edges cross
// peers than under the hashed mapping.
func TestLexicographicLocalityBeatsHashed(t *testing.T) {
	seed := int64(20)
	measure := func(p Placement) (physical, logical int) {
		r := rand.New(rand.NewSource(seed))
		net := NewNetwork(keys.LowerAlnum, p)
		for i := 0; i < 20; i++ {
			if err := net.JoinPeer(keys.LowerAlnum.RandomKey(r, 12, 12), 1000, r); err != nil {
				t.Fatal(err)
			}
		}
		var ks []keys.Key
		for i := 0; i < 200; i++ {
			k := keys.LowerAlnum.RandomKey(r, 3, 8)
			if err := net.InsertKey(k, r); err != nil {
				t.Fatal(err)
			}
			ks = append(ks, k)
		}
		for i := 0; i < 500; i++ {
			res := net.DiscoverRandom(ks[r.Intn(len(ks))], false, r)
			physical += res.PhysicalHops
			logical += res.LogicalHops
		}
		return physical, logical
	}
	lexPhys, lexLog := measure(PlacementLexicographic)
	hshPhys, hshLog := measure(PlacementHashed)
	if lexLog == 0 || hshLog == 0 {
		t.Fatalf("no hops measured")
	}
	if lexPhys >= hshPhys {
		t.Fatalf("lexicographic mapping must reduce physical hops: lex=%d hashed=%d",
			lexPhys, hshPhys)
	}
}

func TestRemoveDataCompacts(t *testing.T) {
	net, r := buildNetwork(t, 4, 1000, 21)
	for _, k := range []keys.Key{"abc", "abd"} {
		if err := net.InsertKey(k, r); err != nil {
			t.Fatal(err)
		}
	}
	mustValidate(t, net)
	if !net.RemoveData("abc", "abc") {
		t.Fatalf("RemoveData failed")
	}
	mustValidate(t, net)
	if net.HasNode("abc") {
		t.Fatalf("dataless leaf must be pruned")
	}
	// Structural parent "ab" spliced; only "abd" remains (as root).
	if net.NumNodes() != 1 {
		t.Fatalf("NumNodes = %d, want 1", net.NumNodes())
	}
	if root, _ := net.Root(); root != keys.Key("abd") {
		t.Fatalf("root = %q, want abd", root)
	}
	if net.RemoveData("abc", "abc") {
		t.Fatalf("second removal must fail")
	}
	if !net.RemoveData("abd", "abd") {
		t.Fatalf("removing the last key failed")
	}
	mustValidate(t, net)
	if net.NumNodes() != 0 {
		t.Fatalf("tree must be empty")
	}
	// Reinsert after emptying works.
	if err := net.InsertKey("xyz", r); err != nil {
		t.Fatal(err)
	}
	mustValidate(t, net)
}

func TestRenamePeerPreservesInvariants(t *testing.T) {
	net, r := buildNetwork(t, 6, 1000, 22)
	for i := 0; i < 60; i++ {
		if err := net.InsertKey(keys.LowerAlnum.RandomKey(r, 2, 6), r); err != nil {
			t.Fatal(err)
		}
	}
	// Rename a peer to the key of its largest hosted node (the MLT
	// move), which keeps the mapping invariant.
	var target *Peer
	for _, id := range net.PeerIDs() {
		p, _ := net.Peer(id)
		if p.NumNodes() > 0 {
			target = p
			break
		}
	}
	if target == nil {
		t.Skip("no peer hosts nodes")
	}
	// The valid rename target is the *circularly* last hosted node
	// key (what MLT picks): for the minimum peer, whose range wraps,
	// that is the largest key at or below its id if any, otherwise
	// the largest wrapped key.
	ks := target.NodeKeys()
	var newID keys.Key
	havePlain := false
	for _, k := range ks {
		if k <= target.ID {
			newID, havePlain = k, true
		}
	}
	if !havePlain {
		newID = ks[len(ks)-1]
	}
	if newID == target.ID || net.ring.Contains(newID) {
		t.Skip("degenerate rename")
	}
	if err := net.RenamePeer(target.ID, newID); err != nil {
		t.Fatalf("rename: %v", err)
	}
	mustValidate(t, net)
}

func TestRenamePeerErrors(t *testing.T) {
	net, _ := buildNetwork(t, 3, 10, 23)
	ids := net.PeerIDs()
	if err := net.RenamePeer("missing", "x"); err == nil {
		t.Fatalf("renaming unknown peer must fail")
	}
	if err := net.RenamePeer(ids[0], ids[1]); err == nil {
		t.Fatalf("renaming onto existing peer must fail")
	}
	if err := net.RenamePeer(ids[0], ids[0]); err != nil {
		t.Fatalf("identity rename must succeed: %v", err)
	}
}

func TestMoveNodeErrors(t *testing.T) {
	net, r := buildNetwork(t, 2, 10, 24)
	if err := net.InsertKey("abc", r); err != nil {
		t.Fatal(err)
	}
	ids := net.PeerIDs()
	if err := net.MoveNode("abc", "missing", ids[0]); err == nil {
		t.Fatalf("move from unknown peer must fail")
	}
	if err := net.MoveNode("abc", ids[0], "missing"); err == nil {
		t.Fatalf("move to unknown peer must fail")
	}
	host, _ := net.HostOf("abc")
	other := ids[0]
	if other == host {
		other = ids[1]
	}
	if err := net.MoveNode("abc", other, host); err == nil {
		t.Fatalf("move of non-hosted node must fail")
	}
}

func TestMaintenanceCounters(t *testing.T) {
	net, r := buildNetwork(t, 5, 1000, 25)
	before := net.Counters.MaintenanceMsgs
	for i := 0; i < 20; i++ {
		if err := net.InsertKey(keys.LowerAlnum.RandomKey(r, 2, 6), r); err != nil {
			t.Fatal(err)
		}
	}
	if net.Counters.MaintenanceMsgs <= before {
		t.Fatalf("inserts must count maintenance messages")
	}
	if net.Counters.MaintenancePhysical > net.Counters.MaintenanceMsgs {
		t.Fatalf("physical %d > total %d", net.Counters.MaintenancePhysical,
			net.Counters.MaintenanceMsgs)
	}
}

func TestAggregateCapacity(t *testing.T) {
	net, _ := buildNetwork(t, 4, 25, 26)
	if got := net.AggregateCapacity(); got != 100 {
		t.Fatalf("AggregateCapacity = %d, want 100", got)
	}
}

func TestStringer(t *testing.T) {
	net, _ := buildNetwork(t, 2, 10, 27)
	if s := net.String(); s == "" {
		t.Fatalf("empty String()")
	}
	if PlacementLexicographic.String() != "lexicographic" ||
		PlacementHashed.String() != "hashed" {
		t.Fatalf("placement names wrong")
	}
}

func TestRandomAccessorsEmpty(t *testing.T) {
	net := NewNetwork(keys.Binary, PlacementLexicographic)
	r := rand.New(rand.NewSource(1))
	if _, ok := net.RandomNodeKey(r); ok {
		t.Fatalf("RandomNodeKey on empty must fail")
	}
	if _, ok := net.RandomPeerID(r); ok {
		t.Fatalf("RandomPeerID on empty must fail")
	}
	if _, ok := net.HostOf("x"); ok {
		t.Fatalf("HostOf with no peers must fail")
	}
}

// TestUpperNodesReceiveMoreLoad checks the premise of Section 3.3:
// with top-down traversal, nodes nearer the root are visited more.
func TestUpperNodesReceiveMoreLoad(t *testing.T) {
	net, r := buildNetwork(t, 4, 1_000_000, 28)
	var ks []keys.Key
	for i := 0; i < 100; i++ {
		k := keys.LowerAlnum.RandomKey(r, 4, 8)
		if err := net.InsertKey(k, r); err != nil {
			t.Fatal(err)
		}
		ks = append(ks, k)
	}
	net.ResetUnit()
	for i := 0; i < 2000; i++ {
		net.DiscoverRandom(ks[r.Intn(len(ks))], true, r)
	}
	rootKey, ok := net.Root()
	if !ok {
		t.Fatal("no root")
	}
	rn, _, _ := net.nodeState(rootKey)
	// The root must be far busier than an average leaf.
	leafLoad, leaves := 0, 0
	for _, id := range net.PeerIDs() {
		p, _ := net.Peer(id)
		for _, n := range p.Nodes {
			if len(n.Children) == 0 {
				leafLoad += n.LoadCur
				leaves++
			}
		}
	}
	if leaves == 0 {
		t.Fatal("no leaves")
	}
	if rn.LoadCur*leaves <= leafLoad*2 {
		t.Fatalf("root load %d should dominate mean leaf load %d/%d",
			rn.LoadCur, leafLoad, leaves)
	}
}
