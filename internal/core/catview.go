package core

import (
	"sort"

	"dlpt/internal/catalog"
	"dlpt/internal/keys"
	"dlpt/internal/persist"
)

// Copy-on-write catalogue image. A durable overlay snapshots its
// catalogue once per replication tick; doing that by walking every
// peer's nodes under the cluster write lock stalls writers for a time
// proportional to the catalogue. Instead the network maintains a
// chunked, sorted image of the data catalogue incrementally from the
// journal funnel (every successful register/unregister passes through
// journal), and CaptureSnapshot freezes it in O(1): bump the image
// epoch and hand out the chunk list. Mutations after a capture clone
// only the chunks they touch — the captured view stays immutable
// while the encoder and fsync run outside the lock.
//
// The image is rebuilt lazily (on the next capture) after the one
// event that changes the catalogue without passing through the
// journal funnel: a Recover pass that declares keys lost.

// catChunkMax bounds a chunk; a full chunk splits in half, so chunks
// hold between catChunkMax/2 and catChunkMax entries (except the
// last survivor of deletions).
const catChunkMax = 128

// catChunk is one sorted run of catalogue entries. epoch records the
// image epoch the chunk was made writable in: a chunk from an older
// epoch may be referenced by a capture and must be cloned before
// mutation.
type catChunk struct {
	epoch uint64
	keys  []keys.Key
	vals  [][]string // aligned with keys; each ascending
}

// catImage is the incrementally-maintained catalogue: ordered,
// non-overlapping, non-empty chunks.
type catImage struct {
	chunks []*catChunk
	nkeys  int
	// shared marks the chunk list itself as referenced by a capture;
	// epoch freezes the chunks (see writable).
	shared bool
	epoch  uint64
}

// CatalogueCapture is an immutable point-in-time view of the data
// catalogue: the epoch-consistent state CaptureSnapshot froze under
// the cluster lock, safe to encode and fsync after the lock is
// released. It implements persist.EntrySource.
type CatalogueCapture struct {
	chunks []*catChunk
	nkeys  int
}

// Len returns the number of catalogue entries captured.
func (c *CatalogueCapture) Len() int { return c.nkeys }

// Ascend yields the captured entries in ascending key order. The
// yielded slices are shared with the capture and must not be
// mutated.
func (c *CatalogueCapture) Ascend(yield func(catalog.Entry) bool) {
	for _, ch := range c.chunks {
		for i, k := range ch.keys {
			if !yield(catalog.Entry{Key: string(k), Values: ch.vals[i]}) {
				return
			}
		}
	}
}

var _ persist.EntrySource = (*CatalogueCapture)(nil)

// CaptureSnapshot freezes the current peer list and catalogue for one
// durable snapshot. It must run under the same critical section as
// the store's BeginSnapshot so the journal rotation is atomic with
// the captured state; its cost is O(peers) + O(1) on the catalogue —
// independent of the catalogue size once the image exists (the first
// capture after a restore or a lossy recovery rebuilds it).
func (net *Network) CaptureSnapshot() ([]persist.PeerState, *CatalogueCapture) {
	ids := net.ring.IDs()
	peers := make([]persist.PeerState, 0, len(ids))
	for _, id := range ids {
		peers = append(peers, persist.PeerState{ID: string(id), Capacity: net.peers[id].Capacity})
	}
	if net.cat == nil {
		net.cat = net.buildCatImage()
	}
	net.cat.shared = true
	net.cat.epoch++
	return peers, &CatalogueCapture{chunks: net.cat.chunks, nkeys: net.cat.nkeys}
}

// catalogueData collects the durable catalogue: the union of the
// replicated data nodes and the live tree's data nodes, live values
// winning (see PersistState for why the union matters). Keys are
// returned ascending with values ascending per key.
func (net *Network) catalogueData() ([]keys.Key, map[keys.Key][]string) {
	data := make(map[keys.Key][]string, len(net.replicaLoc))
	for k, loc := range net.replicaLoc {
		if net.HasNode(k) || !net.pendingLost[k] {
			// Either the live node wins below, or the node was
			// deliberately removed and the replica is a stale snapshot
			// the next tick compacts — persisting it would resurrect
			// unregistered data on restart.
			continue
		}
		if info := net.peers[loc].Replicas[k]; len(info.Data) > 0 {
			data[k] = info.Data
		}
	}
	for _, p := range net.peers {
		for k, n := range p.Nodes {
			if n.HasData() {
				vals := make([]string, 0, len(n.Data))
				for v := range n.Data {
					vals = append(vals, v)
				}
				sort.Strings(vals)
				data[k] = vals
			}
		}
	}
	ks := make([]keys.Key, 0, len(data))
	for k := range data {
		ks = append(ks, k)
	}
	keys.SortKeys(ks)
	return ks, data
}

// buildCatImage materializes the image from the live overlay — the
// one O(n) pass, paid on the first capture and after invalidation.
func (net *Network) buildCatImage() *catImage {
	ks, data := net.catalogueData()
	img := &catImage{nkeys: len(ks)}
	for len(ks) > 0 {
		n := catChunkMax / 2
		if n > len(ks) {
			n = len(ks)
		}
		ch := &catChunk{keys: ks[:n:n], vals: make([][]string, n)}
		for i, k := range ch.keys {
			ch.vals[i] = data[k]
		}
		img.chunks = append(img.chunks, ch)
		ks = ks[n:]
	}
	return img
}

// invalidateCatalogue drops the image; the next capture rebuilds it.
func (net *Network) invalidateCatalogue() { net.cat = nil }

// journalCat folds one successful catalogue mutation into the image.
func (net *Network) journalCat(remove bool, k keys.Key, v string) {
	if net.cat == nil {
		return
	}
	if remove {
		net.cat.remove(k, v)
	} else {
		net.cat.add(k, v)
	}
}

// chunkFor locates the chunk that holds, or would hold, key k.
func (img *catImage) chunkFor(k keys.Key) int {
	i := sort.Search(len(img.chunks), func(i int) bool {
		return img.chunks[i].keys[0] > k
	})
	if i > 0 {
		return i - 1
	}
	return 0
}

// writable returns chunk i ready for in-place mutation, cloning the
// chunk list and/or the chunk if a capture still references them.
// The value slices inside are NOT made private: a value mutation must
// replace the inner slice wholesale.
func (img *catImage) writable(i int) *catChunk {
	if img.shared {
		img.chunks = append([]*catChunk(nil), img.chunks...)
		img.shared = false
	}
	ch := img.chunks[i]
	if ch.epoch != img.epoch {
		ch = &catChunk{
			epoch: img.epoch,
			keys:  append([]keys.Key(nil), ch.keys...),
			vals:  append([][]string(nil), ch.vals...),
		}
		img.chunks[i] = ch
	}
	return ch
}

func (img *catImage) add(k keys.Key, v string) {
	if len(img.chunks) == 0 {
		img.chunks = []*catChunk{{epoch: img.epoch, keys: []keys.Key{k}, vals: [][]string{{v}}}}
		img.shared = false
		img.nkeys = 1
		return
	}
	ci := img.chunkFor(k)
	ch := img.chunks[ci]
	j := sort.Search(len(ch.keys), func(i int) bool { return ch.keys[i] >= k })
	if j < len(ch.keys) && ch.keys[j] == k {
		nv, changed := insertValue(ch.vals[j], v)
		if !changed {
			return
		}
		ch = img.writable(ci)
		ch.vals[j] = nv
		return
	}
	ch = img.writable(ci)
	ch.keys = append(ch.keys, "")
	copy(ch.keys[j+1:], ch.keys[j:])
	ch.keys[j] = k
	ch.vals = append(ch.vals, nil)
	copy(ch.vals[j+1:], ch.vals[j:])
	ch.vals[j] = []string{v}
	img.nkeys++
	if len(ch.keys) > catChunkMax {
		img.split(ci)
	}
}

func (img *catImage) remove(k keys.Key, v string) {
	if len(img.chunks) == 0 {
		return
	}
	ci := img.chunkFor(k)
	ch := img.chunks[ci]
	j := sort.Search(len(ch.keys), func(i int) bool { return ch.keys[i] >= k })
	if j >= len(ch.keys) || ch.keys[j] != k {
		return
	}
	nv, changed := removeValue(ch.vals[j], v)
	if !changed {
		return
	}
	ch = img.writable(ci)
	if len(nv) > 0 {
		ch.vals[j] = nv
		return
	}
	ch.keys = append(ch.keys[:j], ch.keys[j+1:]...)
	ch.vals = append(ch.vals[:j], ch.vals[j+1:]...)
	img.nkeys--
	if len(ch.keys) == 0 {
		img.chunks = append(img.chunks[:ci], img.chunks[ci+1:]...)
	}
}

// split halves an over-full chunk (the chunk list is already private
// — split is only reached from add after writable).
func (img *catImage) split(ci int) {
	ch := img.chunks[ci]
	half := len(ch.keys) / 2
	right := &catChunk{
		epoch: img.epoch,
		keys:  append([]keys.Key(nil), ch.keys[half:]...),
		vals:  append([][]string(nil), ch.vals[half:]...),
	}
	ch.keys = ch.keys[:half:half]
	ch.vals = ch.vals[:half:half]
	img.chunks = append(img.chunks, nil)
	copy(img.chunks[ci+2:], img.chunks[ci+1:])
	img.chunks[ci+1] = right
}

// insertValue returns vals with v inserted in order; changed is false
// when v was already present. The result is always a fresh slice when
// changed — captured views may share the old one.
func insertValue(vals []string, v string) ([]string, bool) {
	j := sort.SearchStrings(vals, v)
	if j < len(vals) && vals[j] == v {
		return vals, false
	}
	out := make([]string, 0, len(vals)+1)
	out = append(out, vals[:j]...)
	out = append(out, v)
	out = append(out, vals[j:]...)
	return out, true
}

// removeValue returns vals without v; changed is false when v was
// absent. The result is a fresh slice when changed.
func removeValue(vals []string, v string) ([]string, bool) {
	j := sort.SearchStrings(vals, v)
	if j >= len(vals) || vals[j] != v {
		return vals, false
	}
	out := make([]string, 0, len(vals)-1)
	out = append(out, vals[:j]...)
	out = append(out, vals[j+1:]...)
	return out, true
}
