package core

import (
	"sync/atomic"

	"dlpt/internal/keys"
)

// Peer is one physical node of the P2P network. It knows its ring
// neighbours, hosts a set ν_P of tree nodes, and can process at most
// Capacity discovery visits per time unit (requests received beyond
// that are ignored, Section 4).
type Peer struct {
	ID       keys.Key
	Pred     keys.Key
	Succ     keys.Key
	Capacity int

	// Nodes is ν_P, the set of tree nodes this peer runs.
	Nodes map[keys.Key]*Node

	// Replicas is the replica set this peer holds on behalf of its
	// ring predecessor: the successor-placed snapshots of the nodes
	// the predecessor runs (see replication.go). A crash of this peer
	// loses the set; Replicate rebuilds it.
	Replicas map[keys.Key]NodeInfo

	// Processed counts discovery visits processed during the current
	// time unit; reset by ResetUnit.
	Processed int

	// procConc counts discovery visits processed by the concurrent
	// engines, whose gated routing runs under a read lock and
	// therefore cannot touch Processed. ResetUnit clears it with the
	// rest of the unit accounting.
	procConc atomic.Int64
}

// NewPeer returns a peer with the given identifier and capacity,
// initially linked to itself.
func NewPeer(id keys.Key, capacity int) *Peer {
	return &Peer{
		ID:       id,
		Pred:     id,
		Succ:     id,
		Capacity: capacity,
		Nodes:    make(map[keys.Key]*Node),
		Replicas: make(map[keys.Key]NodeInfo),
	}
}

// NumNodes returns |ν_P|.
func (p *Peer) NumNodes() int { return len(p.Nodes) }

// NumReplicas returns the size of the replica set this peer holds.
func (p *Peer) NumReplicas() int { return len(p.Replicas) }

// NodeKeys returns the hosted node keys in ascending order.
func (p *Peer) NodeKeys() []keys.Key {
	out := make([]keys.Key, 0, len(p.Nodes))
	for k := range p.Nodes {
		out = append(out, k)
	}
	keys.SortKeys(out)
	return out
}

// LoadPrev returns L_P of the previous time unit: the sum of the
// previous-unit loads of the nodes the peer currently runs.
func (p *Peer) LoadPrev() int {
	sum := 0
	for _, n := range p.Nodes {
		sum += n.LoadPrev
	}
	return sum
}

// LoadCur returns the running request count of the current unit.
func (p *Peer) LoadCur() int {
	sum := 0
	for _, n := range p.Nodes {
		sum += n.LoadCur
	}
	return sum
}

// Saturated reports whether the peer has exhausted its capacity for
// the current time unit, counting both the sequential and the
// concurrently recorded visits.
func (p *Peer) Saturated() bool {
	return p.Processed+int(p.procConc.Load()) >= p.Capacity
}

// TryProcess atomically consumes one unit of discovery capacity,
// reporting false — and consuming nothing — when the peer is
// saturated. Safe to call under a read lock: the slot is reserved
// with the increment itself, so concurrent callers at the capacity
// boundary cannot all slip through a check-then-act window (a
// transiently inflated counter only errs towards dropping, and the
// rollback restores it).
func (p *Peer) TryProcess() bool {
	if int(p.procConc.Add(1))+p.Processed > p.Capacity {
		p.procConc.Add(-1)
		return false
	}
	return true
}

// absorb installs a transferred node on the peer.
func (p *Peer) absorb(info NodeInfo) *Node {
	n := info.materialize()
	p.Nodes[n.Key] = n
	return n
}

// release removes and returns the node with key k.
func (p *Peer) release(k keys.Key) (*Node, bool) {
	n, ok := p.Nodes[k]
	if ok {
		delete(p.Nodes, k)
	}
	return n, ok
}
