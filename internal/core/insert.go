package core

import (
	"fmt"
	"math"
	"math/rand"

	"dlpt/internal/keys"
)

// InsertData declares a service identified by key k with the given
// value (Section 3.2). The DataInsertion request enters the tree on a
// random node and Algorithm 3 routes it, creating at most two tree
// nodes (the key's node and a PGCP parent). The first key of an empty
// tree becomes the root directly.
func (net *Network) InsertData(k keys.Key, value string, r *rand.Rand) error {
	if net.NumPeers() == 0 {
		return fmt.Errorf("core: insert %q into network without peers", k)
	}
	if !net.Alphabet.Valid(k) {
		return fmt.Errorf("core: key %q not in alphabet", k)
	}
	if !net.hasRoot {
		info := NodeInfo{Key: k, Data: []string{value}}
		net.installNode(info, keys.Epsilon)
		net.journal(false, k, value)
		return nil
	}
	entry, _ := net.RandomNodeKey(r)
	host, _ := net.HostOf(entry)
	net.sendToNode(host, entry, message{typ: msgDataInsertion, key: k, value: value})
	if err := net.drain(); err != nil {
		return err
	}
	net.journal(false, k, value)
	return nil
}

// journal feeds the copy-on-write catalogue image and the
// persistence hook, if one is installed.
func (net *Network) journal(remove bool, k keys.Key, value string) {
	net.journalCat(remove, k, value)
	if net.Journal != nil {
		net.Journal(remove, k, value)
	}
}

// InsertKey inserts k with itself as value (the paper's convention).
func (net *Network) InsertKey(k keys.Key, r *rand.Rand) error {
	return net.InsertData(k, string(k), r)
}

// KV is one key/value registration, the unit of batch insertion
// shared by the deployment runtimes.
type KV struct {
	Key   keys.Key
	Value string
}

// InsertBatch declares every entry in order, stopping at the first
// failure.
func (net *Network) InsertBatch(entries []KV, r *rand.Rand) error {
	for _, e := range entries {
		if err := net.InsertData(e.Key, e.Value, r); err != nil {
			return err
		}
	}
	return nil
}

// handleDataInsertion is Algorithm 3, run on node p.
func (net *Network) handleDataInsertion(peer *Peer, p *Node, m message) error {
	k := m.key
	switch {
	case p.Key == k:
		// Line 3.03: the proper node.
		p.Data[m.value] = struct{}{}
		return nil

	case keys.IsProperPrefix(p.Key, k):
		// Lines 3.04-3.09: the sought node is in p's subtree.
		if q, ok := p.BestChildFor(k); ok {
			net.sendToNode(peer.ID, q, m)
			return nil
		}
		// Create k as a new child of p; the host search starts at p
		// itself (line 3.08).
		info := NodeInfo{Key: k, Father: p.Key, HasFather: true, Data: []string{m.value}}
		p.Children[k] = struct{}{}
		return net.routeSearchingHost(peer.ID, p.Key, info)

	case keys.IsProperPrefix(k, p.Key):
		// Lines 3.10-3.20: the sought node is upward.
		if !p.HasFather {
			// k becomes the new root, adopting p (lines 3.11-3.13).
			info := NodeInfo{Key: k, Children: []keys.Key{p.Key}, Data: []string{m.value}}
			p.Father, p.HasFather = k, true
			return net.routeSearchingHost(peer.ID, p.Key, info)
		}
		if keys.IsPrefix(k, p.Father) {
			// k is also a prefix of f_p: forward upward (line 3.16).
			net.sendToNode(peer.ID, p.Father, m)
			return nil
		}
		// k sits strictly between f_p and p (lines 3.18-3.20).
		info := NodeInfo{Key: k, Father: p.Father, HasFather: true,
			Children: []keys.Key{p.Key}, Data: []string{m.value}}
		father := p.Father
		p.Father, p.HasFather = k, true
		if err := net.routeSearchingHost(peer.ID, father, info); err != nil {
			return err
		}
		return net.applyUpdateChild(peer.ID, father, p.Key, k)

	default:
		// Lines 3.21-3.31: k and p diverge.
		if p.HasFather && len(keys.GCP(k, p.Key)) == len(keys.GCP(k, p.Father)) {
			// The father shares the same prefix with k: forward up
			// (lines 3.22-3.23).
			net.sendToNode(peer.ID, p.Father, m)
			return nil
		}
		// p and k become siblings under a created PGCP parent
		// g = GCP(p,k) (lines 3.24-3.31). The paper's line 3.30 sends
		// the k node with father p; structurally the father is g, so
		// we use g (documented deviation).
		g := keys.GCP(p.Key, k)
		ginfo := NodeInfo{Key: g, Father: p.Father, HasFather: p.HasFather,
			Children: []keys.Key{p.Key, k}}
		kinfo := NodeInfo{Key: k, Father: g, HasFather: true, Data: []string{m.value}}
		father, hadFather := p.Father, p.HasFather
		p.Father, p.HasFather = g, true
		start := p.Key
		if hadFather {
			start = father
		}
		if err := net.routeSearchingHost(peer.ID, start, ginfo); err != nil {
			return err
		}
		if hadFather {
			if err := net.applyUpdateChild(peer.ID, father, p.Key, g); err != nil {
				return err
			}
		}
		return net.routeSearchingHost(peer.ID, start, kinfo)
	}
}

// installNode places a freshly created tree node on its owner peer.
// from is the peer at which the host search bottomed out (ε means
// "unknown, route from scratch"). Under the lexicographic placement
// the walk follows successor links; under the hashed placement the
// owner is one DHT lookup away (modelled as ceil(log2 N) messages).
func (net *Network) installNode(info NodeInfo, from keys.Key) {
	var owner *Peer
	switch net.Placement {
	case PlacementHashed:
		id, _ := net.HostOf(info.Key)
		owner = net.peers[id]
		cost := int(math.Ceil(math.Log2(float64(net.NumPeers() + 1))))
		net.Counters.MaintenanceMsgs += cost
		net.Counters.MaintenancePhysical += cost
	default:
		cur, ok := net.peers[from]
		if !ok {
			id, _ := net.HostOf(info.Key)
			cur = net.peers[id]
		}
		for !keys.BetweenRightIncl(info.Key, cur.Pred, cur.ID) {
			next := net.peers[cur.Succ]
			net.Counters.MaintenanceMsgs++
			net.Counters.MaintenancePhysical++
			cur = next
		}
		owner = cur
	}
	// The Host message itself.
	net.Counters.MaintenanceMsgs++
	if owner.ID != from {
		net.Counters.MaintenancePhysical++
	}
	owner.absorb(info)
	net.indexNode(info.Key)
	if !info.HasFather {
		net.root = info.Key
		net.hasRoot = true
	}
}

// RemoveData unregisters value from key k. This operation is not part
// of the paper's protocol (services only appear in the evaluation);
// it is provided for the public API and implemented as a direct state
// update on the owner peer followed by structural compaction mirrored
// from the reference trie semantics: a dataless leaf is deleted and a
// dataless single-child interior node is spliced out.
func (net *Network) RemoveData(k keys.Key, value string) bool {
	n, p, ok := net.nodeState(k)
	if !ok {
		return false
	}
	if _, ok := n.Data[value]; !ok {
		return false
	}
	delete(n.Data, value)
	net.Counters.MaintenanceMsgs++
	net.compactNode(n, p)
	net.journal(true, k, value)
	return true
}

// compactNode prunes structurally redundant dataless nodes upward.
func (net *Network) compactNode(n *Node, p *Peer) {
	for n != nil && !n.HasData() {
		switch len(n.Children) {
		case 0:
			p.release(n.Key)
			net.unindexNode(n.Key)
			if !n.HasFather {
				net.hasRoot = false
				net.root = keys.Epsilon
				return
			}
			fn, fp, ok := net.nodeState(n.Father)
			if !ok {
				return
			}
			delete(fn.Children, n.Key)
			net.Counters.MaintenanceMsgs++
			n, p = fn, fp
		case 1:
			if !n.HasFather {
				// Root with a single child: the child becomes root.
				var only keys.Key
				for c := range n.Children {
					only = c
				}
				cn, _, _ := net.nodeState(only)
				cn.HasFather = false
				cn.Father = keys.Epsilon
				net.root = only
				p.release(n.Key)
				net.unindexNode(n.Key)
				net.Counters.MaintenanceMsgs++
				return
			}
			var only keys.Key
			for c := range n.Children {
				only = c
			}
			cn, _, _ := net.nodeState(only)
			fn, _, _ := net.nodeState(n.Father)
			cn.Father = n.Father
			delete(fn.Children, n.Key)
			fn.Children[only] = struct{}{}
			p.release(n.Key)
			net.unindexNode(n.Key)
			net.Counters.MaintenanceMsgs += 2
			return
		default:
			return
		}
	}
}
