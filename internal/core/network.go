package core

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"

	"dlpt/internal/keys"
	"dlpt/internal/obs"
	"dlpt/internal/ring"
	"dlpt/internal/trace"
	"dlpt/internal/trie"
)

// Placement selects how tree nodes are mapped onto peers.
type Placement int

const (
	// PlacementLexicographic is the paper's contribution: node n runs
	// on the peer with the lowest identifier >= n (wrapping), so
	// lexicographically close nodes share peers.
	PlacementLexicographic Placement = iota
	// PlacementHashed is the original DLPT-over-DHT mapping of [5]:
	// node n runs on the peer owning hash(n) on a hashed Chord ring.
	// Tree structure is identical; only locality differs (the
	// "random mapping" baseline of Figure 9).
	PlacementHashed
)

// String returns the placement name.
func (p Placement) String() string {
	if p == PlacementHashed {
		return "hashed"
	}
	return "lexicographic"
}

// Counters aggregates protocol traffic. Discovery traffic and
// maintenance traffic are accounted separately: only discovery
// consumes peer capacity.
type Counters struct {
	// MaintenanceMsgs counts protocol messages exchanged for peer
	// joins, leaves and data insertions (tree hops, ring walks, node
	// transfers).
	MaintenanceMsgs int
	// MaintenancePhysical counts the subset of maintenance messages
	// that crossed a peer boundary.
	MaintenancePhysical int
	// DiscoveryVisits counts node visits by discovery requests.
	DiscoveryVisits int
	// DroppedVisits counts discovery visits ignored by saturated
	// peers.
	DroppedVisits int
	// NodesTransferred counts tree nodes moved between peers (joins,
	// leaves, load balancing).
	NodesTransferred int
}

// RequestResult reports the fate of one discovery request.
type RequestResult struct {
	Key keys.Key
	// Satisfied is true when the request reached the node storing Key
	// with every peer on the path under capacity.
	Satisfied bool
	// Dropped is true when a saturated peer ignored the request.
	Dropped bool
	// NotFound is true when routing proved the key absent.
	NotFound bool
	// LogicalHops counts tree edges traversed (node-to-node steps).
	LogicalHops int
	// PhysicalHops counts the traversed edges whose endpoints were
	// hosted on different peers (actual network communications).
	PhysicalHops int
}

// Network is the complete DLPT overlay: the peer ring, the
// distributed PGCP tree, and the message machinery of Section 3.
// All methods are deterministic; randomness comes only from the
// *rand.Rand handed to the entry points that need one.
type Network struct {
	Alphabet    *keys.Alphabet
	Placement   Placement
	Counters    Counters
	Replication ReplicationCounters

	// Obs and Tracer, when set by an engine, instrument every query
	// walker built over this network: per-phase trace spans and
	// hop/visit counters. Both are nil-safe and default to disabled.
	Obs    *obs.Metrics
	Tracer *trace.Recorder

	// replicaLoc maps each replicated node key to the peer holding
	// its snapshot (the host's ring successor; the data lives in
	// Peer.Replicas), and pendingLost records the node keys dropped
	// by crashes since the last Recover (see replication.go).
	replicaLoc  map[keys.Key]keys.Key
	pendingLost map[keys.Key]bool

	// Journal, when set, is invoked after every successful catalogue
	// mutation (register / unregister) — the persistence layer's
	// append-only journal hook.
	Journal func(remove bool, key keys.Key, value string)

	// cat is the copy-on-write catalogue image behind CaptureSnapshot
	// (see catview.go); nil until the first capture and after a lossy
	// recovery invalidates it.
	cat *catImage

	peers map[keys.Key]*Peer
	ring  *ring.Ring

	// hashRing holds the hashed positions of peers for
	// PlacementHashed.
	hashPos  []uint64
	hashPeer map[uint64]keys.Key
	peerHash map[keys.Key]uint64

	// node index: every existing tree node key, for random entry
	// points and O(1) membership tests.
	nodeList []keys.Key
	nodePos  map[keys.Key]int

	root    keys.Key
	hasRoot bool

	queue []message
}

// NewNetwork returns an empty overlay using the given alphabet and
// placement.
func NewNetwork(alpha *keys.Alphabet, placement Placement) *Network {
	return &Network{
		Alphabet:  alpha,
		Placement: placement,
		peers:     make(map[keys.Key]*Peer),
		ring:      ring.New(),
		hashPeer:  make(map[uint64]keys.Key),
		peerHash:  make(map[keys.Key]uint64),
		nodePos:   make(map[keys.Key]int),
	}
}

// NumPeers returns the number of peers.
func (net *Network) NumPeers() int { return len(net.peers) }

// NumNodes returns the number of tree nodes.
func (net *Network) NumNodes() int { return len(net.nodeList) }

// Peer returns the peer with the given id.
func (net *Network) Peer(id keys.Key) (*Peer, bool) {
	p, ok := net.peers[id]
	return p, ok
}

// PeerIDs returns all peer ids in ascending order.
func (net *Network) PeerIDs() []keys.Key { return net.ring.IDs() }

// Ring exposes the ring bookkeeping (read-mostly; used by load
// balancers and tests).
func (net *Network) Ring() *ring.Ring { return net.ring }

// Root returns the current tree root key.
func (net *Network) Root() (keys.Key, bool) { return net.root, net.hasRoot }

// AggregateCapacity returns the sum of peer capacities (the
// denominator of the paper's load percentages).
func (net *Network) AggregateCapacity() int {
	sum := 0
	for _, p := range net.peers {
		sum += p.Capacity
	}
	return sum
}

// RandomNodeKey returns a uniformly random tree node key.
func (net *Network) RandomNodeKey(r *rand.Rand) (keys.Key, bool) {
	if len(net.nodeList) == 0 {
		return keys.Epsilon, false
	}
	return net.nodeList[r.Intn(len(net.nodeList))], true
}

// RandomPeerID returns a uniformly random peer id.
func (net *Network) RandomPeerID(r *rand.Rand) (keys.Key, bool) {
	if len(net.ring.IDs()) == 0 {
		return keys.Epsilon, false
	}
	ids := net.ring.IDs()
	return ids[r.Intn(len(ids))], true
}

// ResetUnit starts a new time unit: peers' processed counters reset
// and every node's current load becomes its previous load (the
// history MLT consumes).
func (net *Network) ResetUnit() {
	for _, p := range net.peers {
		p.Processed = 0
		p.procConc.Store(0)
		for _, n := range p.Nodes {
			n.LoadPrev = n.LoadCur + int(n.visits.Swap(0))
			n.LoadCur = 0
		}
	}
}

// PeerSummary is a read-only view of one peer's membership state,
// shared by the execution engines' Peers listings.
type PeerSummary struct {
	ID       keys.Key
	Capacity int
	// Nodes is |ν_P|, the number of tree nodes the peer runs.
	Nodes int
	// LoadPrev is the peer's aggregate load of the previous time unit.
	LoadPrev int
}

// PeerSummaries returns one summary per peer in ascending id (ring)
// order.
func (net *Network) PeerSummaries() []PeerSummary {
	ids := net.ring.IDs()
	out := make([]PeerSummary, 0, len(ids))
	for _, id := range ids {
		p := net.peers[id]
		out = append(out, PeerSummary{
			ID:       id,
			Capacity: p.Capacity,
			Nodes:    p.NumNodes(),
			LoadPrev: p.LoadPrev(),
		})
	}
	return out
}

// --- placement -------------------------------------------------------------

func hash64(k keys.Key) uint64 {
	h := fnv.New64a()
	h.Write([]byte(k))
	return h.Sum64()
}

// HostOf returns the peer responsible for node key k under the
// network's placement.
func (net *Network) HostOf(k keys.Key) (keys.Key, bool) {
	switch net.Placement {
	case PlacementHashed:
		return net.hashHostOf(hash64(k))
	default:
		return net.ring.HostOf(k)
	}
}

func (net *Network) hashHostOf(h uint64) (keys.Key, bool) {
	if len(net.hashPos) == 0 {
		return keys.Epsilon, false
	}
	i := sort.Search(len(net.hashPos), func(i int) bool { return net.hashPos[i] >= h })
	if i == len(net.hashPos) {
		i = 0
	}
	return net.hashPeer[net.hashPos[i]], true
}

func (net *Network) hashInsertPeer(id keys.Key) {
	h := hash64(id)
	for {
		if _, taken := net.hashPeer[h]; !taken {
			break
		}
		h++ // astronomically unlikely; linear probe keeps determinism
	}
	net.hashPeer[h] = id
	net.peerHash[id] = h
	i := sort.Search(len(net.hashPos), func(i int) bool { return net.hashPos[i] >= h })
	net.hashPos = append(net.hashPos, 0)
	copy(net.hashPos[i+1:], net.hashPos[i:])
	net.hashPos[i] = h
}

func (net *Network) hashRemovePeer(id keys.Key) {
	h, ok := net.peerHash[id]
	if !ok {
		return
	}
	delete(net.peerHash, id)
	delete(net.hashPeer, h)
	i := sort.Search(len(net.hashPos), func(i int) bool { return net.hashPos[i] >= h })
	if i < len(net.hashPos) && net.hashPos[i] == h {
		copy(net.hashPos[i:], net.hashPos[i+1:])
		net.hashPos = net.hashPos[:len(net.hashPos)-1]
	}
}

// --- node index ------------------------------------------------------------

func (net *Network) indexNode(k keys.Key) {
	if _, ok := net.nodePos[k]; ok {
		return
	}
	net.nodePos[k] = len(net.nodeList)
	net.nodeList = append(net.nodeList, k)
}

func (net *Network) unindexNode(k keys.Key) {
	i, ok := net.nodePos[k]
	if !ok {
		return
	}
	last := len(net.nodeList) - 1
	net.nodeList[i] = net.nodeList[last]
	net.nodePos[net.nodeList[i]] = i
	net.nodeList = net.nodeList[:last]
	delete(net.nodePos, k)
}

// HasNode reports whether a tree node with key k exists.
func (net *Network) HasNode(k keys.Key) bool {
	_, ok := net.nodePos[k]
	return ok
}

// nodeState fetches the live state of node k from its host.
func (net *Network) nodeState(k keys.Key) (*Node, *Peer, bool) {
	host, ok := net.HostOf(k)
	if !ok {
		return nil, nil, false
	}
	p := net.peers[host]
	if p == nil {
		return nil, nil, false
	}
	n, ok := p.Nodes[k]
	return n, p, ok
}

// --- peer rename (MLT primitive) --------------------------------------------

// RenamePeer moves peer oldID to newID on the ring, preserving its
// circular position. Node states stay on the peer; the caller (the
// load balancer) is responsible for having moved node responsibility
// consistently beforehand.
func (net *Network) RenamePeer(oldID, newID keys.Key) error {
	if oldID == newID {
		return nil
	}
	p, ok := net.peers[oldID]
	if !ok {
		return fmt.Errorf("core: rename of unknown peer %q", oldID)
	}
	if _, exists := net.peers[newID]; exists {
		return fmt.Errorf("core: rename target %q already exists", newID)
	}
	if err := net.ring.Replace(oldID, newID); err != nil {
		return err
	}
	delete(net.peers, oldID)
	p.ID = newID
	net.peers[newID] = p
	// Fix neighbour links.
	if pred, ok := net.peers[p.Pred]; ok && pred != p {
		pred.Succ = newID
	}
	if succ, ok := net.peers[p.Succ]; ok && succ != p {
		succ.Pred = newID
	}
	if p.Pred == oldID {
		p.Pred = newID
	}
	if p.Succ == oldID {
		p.Succ = newID
	}
	if net.Placement == PlacementHashed {
		net.hashRemovePeer(oldID)
		net.hashInsertPeer(newID)
	}
	// The peer object (and its replica set) kept its circular
	// position; only the location index must follow the new name.
	for k := range p.Replicas {
		net.replicaLoc[k] = newID
	}
	return nil
}

// MoveNode transfers the node with key k from peer fromID to peer
// toID (a load-balancing transfer; counted as maintenance traffic).
func (net *Network) MoveNode(k, fromID, toID keys.Key) error {
	from, ok := net.peers[fromID]
	if !ok {
		return fmt.Errorf("core: move from unknown peer %q", fromID)
	}
	to, ok := net.peers[toID]
	if !ok {
		return fmt.Errorf("core: move to unknown peer %q", toID)
	}
	n, ok := from.release(k)
	if !ok {
		return fmt.Errorf("core: peer %q does not host node %q", fromID, k)
	}
	to.Nodes[k] = n
	net.Counters.MaintenanceMsgs++
	net.Counters.MaintenancePhysical++
	net.Counters.NodesTransferred++
	return nil
}

// --- validation -------------------------------------------------------------

// Validate cross-checks every invariant of the overlay: ring order
// and neighbour links, the mapping rule, tree pointer consistency,
// and the PGCP property (via a rebuilt reference trie).
func (net *Network) Validate() error {
	if err := net.ring.Validate(); err != nil {
		return err
	}
	if len(net.peers) != net.ring.Len() {
		return fmt.Errorf("core: %d peers vs %d ring members", len(net.peers), net.ring.Len())
	}
	ids := net.ring.IDs()
	for i, id := range ids {
		p, ok := net.peers[id]
		if !ok {
			return fmt.Errorf("core: ring member %q missing from peer map", id)
		}
		if p.ID != id {
			return fmt.Errorf("core: peer map key %q vs peer id %q", id, p.ID)
		}
		wantSucc := ids[(i+1)%len(ids)]
		wantPred := ids[(i-1+len(ids))%len(ids)]
		if p.Succ != wantSucc {
			return fmt.Errorf("core: peer %q succ=%q want %q", id, p.Succ, wantSucc)
		}
		if p.Pred != wantPred {
			return fmt.Errorf("core: peer %q pred=%q want %q", id, p.Pred, wantPred)
		}
	}
	// Mapping rule and node accounting.
	seen := 0
	roots := 0
	ref := trie.New()
	for id, p := range net.peers {
		for k, n := range p.Nodes {
			seen++
			if n.Key != k {
				return fmt.Errorf("core: node map key %q vs node key %q", k, n.Key)
			}
			host, _ := net.HostOf(k)
			if host != id {
				return fmt.Errorf("core: node %q hosted on %q, mapping says %q", k, id, host)
			}
			if _, ok := net.nodePos[k]; !ok {
				return fmt.Errorf("core: node %q missing from index", k)
			}
			if !n.HasFather {
				roots++
				if !net.hasRoot || net.root != k {
					return fmt.Errorf("core: root pointer %q does not match fatherless node %q", net.root, k)
				}
			} else if !keys.IsProperPrefix(n.Father, k) {
				return fmt.Errorf("core: father %q of %q is not a proper prefix", n.Father, k)
			}
			for c := range n.Children {
				cn, _, ok := net.nodeState(c)
				if !ok {
					return fmt.Errorf("core: child %q of %q does not exist", c, k)
				}
				if !cn.HasFather || cn.Father != k {
					return fmt.Errorf("core: child %q of %q has father %q", c, k, cn.Father)
				}
			}
			if n.HasFather {
				fn, _, ok := net.nodeState(n.Father)
				if !ok {
					return fmt.Errorf("core: father %q of %q does not exist", n.Father, k)
				}
				if _, ok := fn.Children[k]; !ok {
					return fmt.Errorf("core: father %q does not list child %q", n.Father, k)
				}
			}
		}
	}
	if seen != len(net.nodeList) {
		return fmt.Errorf("core: %d hosted nodes vs %d indexed", seen, len(net.nodeList))
	}
	if net.hasRoot && roots != 1 {
		return fmt.Errorf("core: %d fatherless nodes, want 1", roots)
	}
	if !net.hasRoot && seen != 0 {
		return fmt.Errorf("core: %d nodes but no root", seen)
	}
	// Replica placement: the location index and the per-peer replica
	// sets must agree, and every replica of a live node must sit on
	// its host's ring successor (the successor placement rule; the
	// replicas of crashed, unrecovered nodes stay wherever they
	// survived).
	replicaCount := 0
	for id, p := range net.peers {
		for k := range p.Replicas {
			replicaCount++
			if loc, ok := net.replicaLoc[k]; !ok || loc != id {
				return fmt.Errorf("core: replica of %q on %q, index says %q", k, id, loc)
			}
		}
	}
	if replicaCount != len(net.replicaLoc) {
		return fmt.Errorf("core: %d held replicas vs %d indexed", replicaCount, len(net.replicaLoc))
	}
	for k, loc := range net.replicaLoc {
		if !net.HasNode(k) {
			continue
		}
		want, ok := net.replicaTarget(k)
		if !ok || loc != want {
			return fmt.Errorf("core: replica of %q on %q, successor rule says %q", k, loc, want)
		}
	}
	// PGCP property: rebuild the key set into a reference trie and
	// require identical node label sets.
	if net.hasRoot {
		for id := range net.peers {
			for k, n := range net.peers[id].Nodes {
				if n.HasData() {
					ref.InsertKey(k)
				}
			}
		}
		if err := ref.Validate(); err != nil {
			return fmt.Errorf("core: reference trie invalid: %v", err)
		}
		want := make(map[keys.Key]bool)
		for _, l := range ref.Labels() {
			want[l] = true
		}
		for _, k := range net.nodeList {
			if !want[k] {
				return fmt.Errorf("core: node %q not in reference PGCP tree", k)
			}
		}
		if len(want) != len(net.nodeList) {
			return fmt.Errorf("core: %d nodes vs %d reference labels", len(net.nodeList), len(want))
		}
	}
	return nil
}

// TreeSnapshot rebuilds a centralized trie.Tree equal to the
// distributed tree (used by differential tests and by read-side
// queries of the public API).
func (net *Network) TreeSnapshot() *trie.Tree {
	t := trie.New()
	for _, p := range net.peers {
		for k, n := range p.Nodes {
			for v := range n.Data {
				t.Insert(k, v)
			}
		}
	}
	return t
}
