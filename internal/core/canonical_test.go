package core

import (
	"math/rand"
	"testing"

	"dlpt/internal/keys"
	"dlpt/internal/trie"
	"dlpt/internal/workload"
)

// TestBuildCanonicalMatchesReferenceTrie differentially pins the
// sorted-batch canonical construction against the reference PGCP
// trie: same label set, same father/child pointers, same root.
func TestBuildCanonicalMatchesReferenceTrie(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	cases := [][]keys.Key{
		nil,
		{keys.Key("a")},
		{keys.Key("a"), keys.Key("b")},
		{keys.Key("ab"), keys.Key("abcd"), keys.Key("abcx")},
		{keys.Key("ab"), keys.Key("abc"), keys.Key("abcd")},
		workload.GridCorpus(200),
	}
	for i := 0; i < 40; i++ {
		n := 1 + r.Intn(60)
		set := make(map[keys.Key]bool, n)
		for len(set) < n {
			set[keys.LowerAlnum.RandomKey(r, 1, 8)] = true
		}
		ks := make([]keys.Key, 0, n)
		for k := range set {
			ks = append(ks, k)
		}
		cases = append(cases, ks)
	}
	for ci, ks := range cases {
		keys.SortKeys(ks)
		want, root, ok := buildCanonical(ks)
		ref := trie.New()
		for _, k := range ks {
			ref.InsertKey(k)
		}
		if len(ks) == 0 {
			if ok {
				t.Fatalf("case %d: empty set produced a root", ci)
			}
			continue
		}
		if !ok || root != ref.Root().Label {
			t.Fatalf("case %d: root = %q ok=%v, want %q", ci, root, ok, ref.Root().Label)
		}
		refNodes := 0
		ref.Walk(func(tn *trie.Node) {
			refNodes++
			cn, ok := want[tn.Label]
			if !ok {
				t.Fatalf("case %d: canonical set missing %q", ci, tn.Label)
			}
			if cn.hasFather != (tn.Parent != nil) {
				t.Fatalf("case %d: node %q hasFather=%v", ci, tn.Label, cn.hasFather)
			}
			if tn.Parent != nil && cn.father != tn.Parent.Label {
				t.Fatalf("case %d: node %q father=%q want %q", ci, tn.Label, cn.father, tn.Parent.Label)
			}
			if len(cn.kids) != tn.NumChildren() {
				t.Fatalf("case %d: node %q kids=%v want %d children", ci, tn.Label, cn.kids, tn.NumChildren())
			}
			for _, c := range tn.Children() {
				found := false
				for _, k := range cn.kids {
					if k == c.Label {
						found = true
					}
				}
				if !found {
					t.Fatalf("case %d: node %q missing child %q", ci, tn.Label, c.Label)
				}
			}
		})
		if refNodes != len(want) {
			t.Fatalf("case %d: %d canonical labels, reference has %d", ci, len(want), refNodes)
		}
	}
}
