package core

import (
	"math/rand"
	"reflect"
	"testing"

	"dlpt/internal/keys"
)

func populate(t *testing.T, seed int64, ks ...keys.Key) (*Network, *rand.Rand) {
	t.Helper()
	net, r := buildNetwork(t, 8, 1<<30, seed)
	for _, k := range ks {
		if err := net.InsertKey(k, r); err != nil {
			t.Fatal(err)
		}
	}
	return net, r
}

func TestRangeQueryDistributed(t *testing.T) {
	corpus := []keys.Key{"dgemm", "dgemv", "saxpy", "sgemm", "sgemv", "strsm"}
	net, r := populate(t, 31, corpus...)
	res := net.RangeQuery("saxpy", "sgemv", r)
	want := []keys.Key{"saxpy", "sgemm", "sgemv"}
	if !reflect.DeepEqual(res.Keys, want) {
		t.Fatalf("RangeQuery = %v, want %v", res.Keys, want)
	}
	if res.NodesVisited == 0 {
		t.Fatalf("no nodes visited")
	}
	if res.PhysicalHops > res.LogicalHops {
		t.Fatalf("physical %d > logical %d", res.PhysicalHops, res.LogicalHops)
	}
	if out := net.RangeQuery("z", "a", r); out.Keys != nil {
		t.Fatalf("inverted range = %v", out.Keys)
	}
	if out := net.RangeQuery("e", "r", r); len(out.Keys) != 0 {
		t.Fatalf("empty interval = %v", out.Keys)
	}
	full := net.RangeQuery("a", "zz", r)
	if len(full.Keys) != len(corpus) {
		t.Fatalf("full range = %v", full.Keys)
	}
}

func TestCompleteDistributed(t *testing.T) {
	corpus := []keys.Key{"sgemm", "sgemv", "strsm", "saxpy", "dgemm"}
	net, r := populate(t, 32, corpus...)
	res := net.Complete("sge", r)
	want := []keys.Key{"sgemm", "sgemv"}
	if !reflect.DeepEqual(res.Keys, want) {
		t.Fatalf("Complete(sge) = %v, want %v", res.Keys, want)
	}
	all := net.Complete("", r)
	if len(all.Keys) != len(corpus) {
		t.Fatalf("Complete(ε) = %v", all.Keys)
	}
	if res := net.Complete("zzz", r); len(res.Keys) != 0 {
		t.Fatalf("Complete(zzz) = %v", res.Keys)
	}
	// Exact key is its own completion.
	if res := net.Complete("saxpy", r); !reflect.DeepEqual(res.Keys, []keys.Key{"saxpy"}) {
		t.Fatalf("Complete(saxpy) = %v", res.Keys)
	}
}

func TestQueryEmptyTree(t *testing.T) {
	net, r := buildNetwork(t, 3, 10, 33)
	if res := net.RangeQuery("a", "z", r); len(res.Keys) != 0 || res.NodesVisited != 0 {
		t.Fatalf("empty tree range = %+v", res)
	}
	if res := net.Complete("a", r); len(res.Keys) != 0 {
		t.Fatalf("empty tree complete = %+v", res)
	}
}

// TestQueryMatchesSnapshot differentially checks the distributed
// traversal against the reference trie on random populations.
func TestQueryMatchesSnapshot(t *testing.T) {
	r := rand.New(rand.NewSource(34))
	net, _ := buildNetwork(t, 10, 1<<30, 35)
	for i := 0; i < 250; i++ {
		if err := net.InsertKey(keys.LowerAlnum.RandomKey(r, 2, 8), r); err != nil {
			t.Fatal(err)
		}
	}
	snap := net.TreeSnapshot()
	for trial := 0; trial < 40; trial++ {
		lo := keys.LowerAlnum.RandomKey(r, 1, 6)
		hi := keys.LowerAlnum.RandomKey(r, 1, 6)
		if hi < lo {
			lo, hi = hi, lo
		}
		got := net.RangeQuery(lo, hi, r).Keys
		want := snap.Range(lo, hi, 0)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: range [%q,%q] = %v, want %v", trial, lo, hi, got, want)
		}
	}
	for trial := 0; trial < 40; trial++ {
		prefix := keys.LowerAlnum.RandomKey(r, 0, 4)
		got := net.Complete(prefix, r).Keys
		want := snap.Complete(prefix, 0)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: complete %q = %v, want %v", trial, prefix, got, want)
		}
	}
}

// TestQueryLocality checks that the lexicographic mapping keeps most
// of a subtree traversal on few peers: the physical hops of a narrow
// completion stay below its logical hops.
func TestQueryLocality(t *testing.T) {
	r := rand.New(rand.NewSource(36))
	net, _ := buildNetwork(t, 20, 1<<30, 37)
	for i := 0; i < 300; i++ {
		if err := net.InsertKey(keys.LowerAlnum.RandomKey(r, 3, 8), r); err != nil {
			t.Fatal(err)
		}
	}
	totLog, totPhys := 0, 0
	for i := 0; i < 50; i++ {
		prefix := keys.LowerAlnum.RandomKey(r, 1, 2)
		res := net.Complete(prefix, r)
		totLog += res.LogicalHops
		totPhys += res.PhysicalHops
	}
	if totLog == 0 {
		t.Skip("no traversal happened")
	}
	if totPhys >= totLog {
		t.Fatalf("subtree traversal crossed peers on every edge: %d/%d", totPhys, totLog)
	}
}
