package core

import (
	"fmt"
	"math/rand"

	"dlpt/internal/keys"
	"dlpt/internal/persist"
)

// Persistence glue: the overlay's durable state is exactly the
// replica store — what successor replication has captured — plus the
// peer ring, so a cold restart recovers precisely what the paper's
// replication model guarantees: everything declared before the last
// Replicate (journal replay then carries registrations past it).

// PersistState captures the current ring and catalogue for one
// durable snapshot: every peer (id, capacity) in ring order, and the
// union of the replicated data nodes and the live tree's data nodes
// (live values win — they are at least as fresh). The union matters
// on the concurrent engines: a registration racing the Replicate tick
// has journaled into the epoch this snapshot supersedes, so the
// snapshot itself must contain it; conversely a crashed, unrecovered
// node exists only in its replica. Structural nodes are omitted — the
// canonical PGCP structure is derivable and the restore path rebuilds
// it by anti-entropy.
func (net *Network) PersistState() ([]persist.PeerState, []persist.NodeState) {
	ids := net.ring.IDs()
	peers := make([]persist.PeerState, 0, len(ids))
	for _, id := range ids {
		peers = append(peers, persist.PeerState{ID: string(id), Capacity: net.peers[id].Capacity})
	}
	ks, data := net.catalogueData()
	nodes := make([]persist.NodeState, 0, len(ks))
	for _, k := range ks {
		nodes = append(nodes, persist.NodeState{Key: string(k), Values: data[k]})
	}
	return peers, nodes
}

// RestoreFromStore is RestoreFrom over a store's loaded state — the
// one-call restore path the engines share. The snapshot mapping is
// released once the restore walk has materialized the overlay.
func (net *Network) RestoreFromStore(store *persist.Store, r *rand.Rand) error {
	st, err := store.Load()
	if err != nil {
		return err
	}
	defer st.Release()
	return net.RestoreFrom(st, r)
}

// AttachJournal installs the persistence journal hook: every
// successful catalogue mutation appends to the store. Install it only
// after any restore, so journal replay does not re-append; a nil
// store is a no-op.
func (net *Network) AttachJournal(store *persist.Store) {
	if store == nil {
		return
	}
	net.Journal = func(remove bool, k keys.Key, v string) {
		_ = store.Append(remove, string(k), v)
	}
}

// RestoreFrom rebuilds an empty overlay from persisted state: the
// ring is recreated peer by peer with its persisted identifiers and
// capacities, the persisted nodes are seeded into the replica store,
// the existing canonical anti-entropy rebuild (Recover) reinstalls
// them, and finally the journal replays the mutations recorded after
// the snapshot. The restored overlay passes the full Validate set.
func (net *Network) RestoreFrom(st *persist.LoadedState, r *rand.Rand) error {
	if net.NumPeers() != 0 || net.NumNodes() != 0 {
		return fmt.Errorf("core: restore into a non-empty overlay")
	}
	if st == nil || st.Snapshot == nil {
		return fmt.Errorf("core: nothing to restore (no valid snapshot on disk)")
	}
	for _, p := range st.Snapshot.Peers {
		if err := net.JoinPeer(keys.Key(p.ID), p.Capacity, r); err != nil {
			return fmt.Errorf("core: restore peer %q: %w", p.ID, err)
		}
	}
	// Stream the snapshot's catalogue: for a mapped version-2 snapshot
	// each subtree materializes as the walk first touches it.
	var restoreErr error
	err := st.Snapshot.AscendNodes(func(n persist.NodeState) bool {
		k := keys.Key(n.Key)
		tgt, ok := net.replicaTarget(k)
		if !ok {
			restoreErr = fmt.Errorf("core: restore replica %q: no peers", n.Key)
			return false
		}
		net.placeReplica(k, NodeInfo{Key: k, Data: n.Values}, tgt)
		return true
	})
	if err == nil {
		err = restoreErr
	}
	if err != nil {
		return err
	}
	net.Recover()
	for _, rec := range st.Journal {
		if rec.Remove {
			net.RemoveData(keys.Key(rec.Key), rec.Value)
			continue
		}
		if err := net.InsertData(keys.Key(rec.Key), rec.Value, r); err != nil {
			return fmt.Errorf("core: journal replay of %q: %w", rec.Key, err)
		}
	}
	if err := net.Validate(); err != nil {
		return fmt.Errorf("core: restored overlay invalid: %w", err)
	}
	return nil
}
