package core

import (
	"fmt"
	"math/rand"
	"testing"

	"dlpt/internal/catalog"
	"dlpt/internal/keys"
	"dlpt/internal/persist"
)

func captureToNodes(c *CatalogueCapture) []persist.NodeState {
	out := make([]persist.NodeState, 0, c.Len())
	c.Ascend(func(e catalog.Entry) bool {
		vals := append([]string(nil), e.Values...)
		out = append(out, persist.NodeState{Key: e.Key, Values: vals})
		return true
	})
	return out
}

func nodesEqual(a, b []persist.NodeState) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Key != b[i].Key || len(a[i].Values) != len(b[i].Values) {
			return false
		}
		for j := range a[i].Values {
			if a[i].Values[j] != b[i].Values[j] {
				return false
			}
		}
	}
	return true
}

// TestCaptureSnapshotMatchesPersistState drives a random mix of
// registrations, unregistrations, churn and crash/recover cycles,
// capturing the catalogue along the way. Every capture must equal the
// eager PersistState walk at capture time, and — the copy-on-write
// property — must still equal it after arbitrary later mutations.
func TestCaptureSnapshotMatchesPersistState(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	net, _ := buildNetwork(t, 6, 1<<30, 51)
	type frozen struct {
		cap  *CatalogueCapture
		want []persist.NodeState
	}
	var caps []frozen
	live := make([]KV, 0, 256)
	check := func(step int) {
		_, want := net.PersistState()
		peers, c := net.CaptureSnapshot()
		if len(peers) != net.NumPeers() {
			t.Fatalf("step %d: captured %d peers, overlay has %d", step, len(peers), net.NumPeers())
		}
		if got := captureToNodes(c); !nodesEqual(got, want) {
			t.Fatalf("step %d: capture diverges from PersistState:\n got %+v\nwant %+v", step, got, want)
		}
		caps = append(caps, frozen{c, want})
	}
	for step := 0; step < 400; step++ {
		switch op := r.Intn(10); {
		case op < 6:
			k := keys.LowerAlnum.RandomKey(r, 2, 10)
			v := fmt.Sprintf("ep://%d", r.Intn(8))
			if err := net.InsertData(k, v, r); err != nil {
				t.Fatal(err)
			}
			live = append(live, KV{k, v})
		case op < 7 && len(live) > 0:
			i := r.Intn(len(live))
			net.RemoveData(live[i].Key, live[i].Value)
			live = append(live[:i], live[i+1:]...)
		case op < 8:
			net.Replicate()
		case op < 9 && net.NumPeers() > 2:
			ids := net.PeerIDs()
			if err := net.FailPeer(ids[r.Intn(len(ids))]); err != nil {
				t.Fatal(err)
			}
			net.Recover()
			// Recovery may have declared keys lost; drop them from the
			// mirror so later removes stay meaningful.
			kept := live[:0]
			for _, kv := range live {
				if net.HasNode(kv.Key) {
					kept = append(kept, kv)
				}
			}
			live = kept
		default:
			if err := net.JoinPeer(keys.LowerAlnum.RandomKey(r, 12, 12), 1<<30, r); err != nil {
				t.Fatal(err)
			}
		}
		if step%17 == 0 {
			check(step)
		}
	}
	// The frozen captures must have been untouched by every mutation
	// after them.
	for i, f := range caps {
		if got := captureToNodes(f.cap); !nodesEqual(got, f.want) {
			t.Fatalf("capture %d mutated after the fact:\n got %+v\nwant %+v", i, got, f.want)
		}
	}
}

// TestCaptureSnapshotChunkSplits exercises chunk split and drain
// paths around the chunk size bound.
func TestCaptureSnapshotChunkSplits(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	net, _ := buildNetwork(t, 3, 1<<30, 52)
	var inserted []keys.Key
	for i := 0; i < 3*catChunkMax; i++ {
		k := keys.Key(fmt.Sprintf("svc%04d", i))
		if err := net.InsertKey(k, r); err != nil {
			t.Fatal(err)
		}
		inserted = append(inserted, k)
	}
	_, c := net.CaptureSnapshot()
	if c.Len() != len(inserted) {
		t.Fatalf("capture len = %d, want %d", c.Len(), len(inserted))
	}
	// Drain everything (in random order) with captures interleaved.
	r.Shuffle(len(inserted), func(i, j int) { inserted[i], inserted[j] = inserted[j], inserted[i] })
	for i, k := range inserted {
		net.RemoveData(k, string(k))
		if i%64 == 0 {
			_, want := net.PersistState()
			_, cc := net.CaptureSnapshot()
			if got := captureToNodes(cc); !nodesEqual(got, want) {
				t.Fatalf("drain step %d: capture diverges", i)
			}
		}
	}
	_, cc := net.CaptureSnapshot()
	if cc.Len() != 0 {
		t.Fatalf("drained capture len = %d", cc.Len())
	}
	if got := captureToNodes(c); len(got) != 3*catChunkMax {
		t.Fatalf("first capture shrank to %d entries", len(got))
	}
}
