package core

import (
	"fmt"

	"dlpt/internal/keys"
)

// msgType enumerates the queued protocol messages of Section 3.
// SearchingHost, Host and UpdateChild execute synchronously (see
// routeSearchingHost / applyUpdateChild): a queued SearchingHost
// could otherwise be overtaken by a message addressed to the node it
// is still placing, which a real implementation avoids by delaying
// delivery until the node exists. They are accounted as messages all
// the same. YourInformation and UpdateSuccessor of Algorithm 2 are
// applied inline by the NewPredecessor handler.
type msgType int

const (
	msgPeerJoin       msgType = iota // <PeerJoin, P, s> — node-addressed
	msgNewPredecessor                // <NewPredecessor, P> — peer-addressed
	msgDataInsertion                 // <DataInsertion, k> — node-addressed
)

func (t msgType) String() string {
	switch t {
	case msgPeerJoin:
		return "PeerJoin"
	case msgNewPredecessor:
		return "NewPredecessor"
	case msgDataInsertion:
		return "DataInsertion"
	}
	return fmt.Sprintf("msgType(%d)", int(t))
}

// message is one in-flight protocol message.
type message struct {
	typ           msgType
	toNode        keys.Key // recipient tree node (nodeAddressed)
	toPeer        keys.Key // recipient peer (!nodeAddressed)
	nodeAddressed bool
	fromPeer      keys.Key // sending peer, for physical-hop accounting

	// PeerJoin / NewPredecessor payload.
	joinID       keys.Key
	joinState    int
	joinCapacity int

	// DataInsertion payload.
	key   keys.Key
	value string
}

// sendToNode enqueues a node-addressed message.
func (net *Network) sendToNode(from keys.Key, to keys.Key, m message) {
	m.fromPeer = from
	m.toNode = to
	m.nodeAddressed = true
	net.queue = append(net.queue, m)
}

// sendToPeer enqueues a peer-addressed message.
func (net *Network) sendToPeer(from keys.Key, to keys.Key, m message) {
	m.fromPeer = from
	m.toPeer = to
	m.nodeAddressed = false
	net.queue = append(net.queue, m)
}

// drain processes queued messages to quiescence. Every delivery is a
// maintenance message; a delivery whose sending peer differs from the
// receiving peer is additionally a physical communication.
func (net *Network) drain() error {
	for len(net.queue) > 0 {
		m := net.queue[0]
		net.queue = net.queue[1:]
		if err := net.deliver(m); err != nil {
			return err
		}
	}
	return nil
}

func (net *Network) deliver(m message) error {
	var host keys.Key
	if m.nodeAddressed {
		h, ok := net.HostOf(m.toNode)
		if !ok {
			return fmt.Errorf("core: %v to node %q with no peers", m.typ, m.toNode)
		}
		host = h
	} else {
		host = m.toPeer
	}
	p, ok := net.peers[host]
	if !ok {
		return fmt.Errorf("core: %v addressed to unknown peer %q", m.typ, host)
	}
	net.Counters.MaintenanceMsgs++
	if m.fromPeer != host {
		net.Counters.MaintenancePhysical++
	}
	if m.nodeAddressed {
		n, ok := p.Nodes[m.toNode]
		if !ok {
			return fmt.Errorf("core: %v addressed to absent node %q on peer %q",
				m.typ, m.toNode, host)
		}
		switch m.typ {
		case msgPeerJoin:
			return net.handlePeerJoin(p, n, m)
		case msgDataInsertion:
			return net.handleDataInsertion(p, n, m)
		}
		return fmt.Errorf("core: node-addressed %v unexpected", m.typ)
	}
	switch m.typ {
	case msgNewPredecessor:
		return net.handleNewPredecessor(p, m)
	}
	return fmt.Errorf("core: peer-addressed %v unexpected", m.typ)
}

// applyUpdateChild performs Algorithm 3's UpdateChild message on the
// node with key father, replacing old with new in its child set. It
// is executed synchronously and accounted as one message.
func (net *Network) applyUpdateChild(fromPeer keys.Key, father, old, new keys.Key) error {
	n, p, ok := net.nodeState(father)
	if !ok {
		return fmt.Errorf("core: UpdateChild to absent node %q", father)
	}
	net.Counters.MaintenanceMsgs++
	if p.ID != fromPeer {
		net.Counters.MaintenancePhysical++
	}
	delete(n.Children, old)
	n.Children[new] = struct{}{}
	return nil
}

// routeSearchingHost performs the host search of Algorithm 3 lines
// 3.32-3.37 synchronously: starting at node `at`, descend to the
// greatest child strictly below the key being placed until no such
// child exists, then hand the node to the local peer (installNode
// finishes with the peer-level walk to the true owner). Each hop is
// accounted as one message.
func (net *Network) routeSearchingHost(fromPeer keys.Key, at keys.Key, info NodeInfo) error {
	cur := at
	from := fromPeer
	for {
		n, p, ok := net.nodeState(cur)
		if !ok {
			return fmt.Errorf("core: SearchingHost routed to absent node %q", cur)
		}
		net.Counters.MaintenanceMsgs++
		if p.ID != from {
			net.Counters.MaintenancePhysical++
		}
		q, ok := n.MaxChildAtMost(info.Key, false)
		if !ok {
			net.installNode(info, p.ID)
			return nil
		}
		cur = q
		from = p.ID
	}
}
