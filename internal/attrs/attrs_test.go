package attrs

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"dlpt/engine"
	"dlpt/engine/local"
	"dlpt/internal/keys"
)

var ctx = context.Background()

func newDirectory(t *testing.T, peers int, seed int64) *Directory {
	t.Helper()
	caps := make([]int, peers)
	for i := range caps {
		caps[i] = 1 << 30
	}
	eng, err := local.New(engine.Config{
		Alphabet:   keys.PrintableASCII,
		Capacities: caps,
		Seed:       seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return NewDirectory(eng)
}

func sampleServices() []Service {
	return []Service{
		{ID: "node-a", Attributes: map[string]string{"cpu": "x86_64", "mem": "032", "os": "linux"}},
		{ID: "node-b", Attributes: map[string]string{"cpu": "x86_64", "mem": "064", "os": "linux"}},
		{ID: "node-c", Attributes: map[string]string{"cpu": "arm64", "mem": "016", "os": "linux"}},
		{ID: "node-d", Attributes: map[string]string{"cpu": "x86_64", "mem": "128", "os": "solaris"}},
		{ID: "node-e", Attributes: map[string]string{"cpu": "sparc", "mem": "064", "os": "solaris"}},
	}
}

func TestRegisterValidation(t *testing.T) {
	d := newDirectory(t, 4, 1)
	if err := d.Register(ctx, Service{ID: "", Attributes: map[string]string{"a": "b"}}); err == nil {
		t.Fatalf("empty id must fail")
	}
	if err := d.Register(ctx, Service{ID: "x", Attributes: nil}); err == nil {
		t.Fatalf("no attributes must fail")
	}
	if err := d.Register(ctx, Service{ID: "x", Attributes: map[string]string{"a=b": "c"}}); err == nil {
		t.Fatalf("separator in attribute name must fail")
	}
	if err := d.Register(ctx, Service{ID: "x", Attributes: map[string]string{"a": "ok"}}); err != nil {
		t.Fatal(err)
	}
	if err := d.Register(ctx, Service{ID: "x", Attributes: map[string]string{"a": "ok"}}); err == nil {
		t.Fatalf("duplicate id must fail")
	}
	if err := d.Register(ctx, Service{ID: "y", Attributes: map[string]string{"a": "bad\tval"}}); err == nil {
		t.Fatalf("value outside alphabet must fail")
	}
}

func TestExactQuery(t *testing.T) {
	d := newDirectory(t, 6, 2)
	for _, s := range sampleServices() {
		if err := d.Register(ctx, s); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Validate(ctx); err != nil {
		t.Fatal(err)
	}
	ids, cost, err := d.Query(ctx, Predicate{Attr: "cpu", Exact: "x86_64"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, []string{"node-a", "node-b", "node-d"}) {
		t.Fatalf("ids = %v", ids)
	}
	if cost.LogicalHops == 0 {
		t.Fatalf("query must cost hops")
	}
	ids, _, _ = d.Query(ctx, Predicate{Attr: "cpu", Exact: "riscv"})
	if len(ids) != 0 {
		t.Fatalf("absent value ids = %v", ids)
	}
}

func TestConjunctiveQuery(t *testing.T) {
	d := newDirectory(t, 6, 3)
	for _, s := range sampleServices() {
		if err := d.Register(ctx, s); err != nil {
			t.Fatal(err)
		}
	}
	ids, _, err := d.Query(ctx,
		Predicate{Attr: "cpu", Exact: "x86_64"},
		Predicate{Attr: "os", Exact: "linux"},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, []string{"node-a", "node-b"}) {
		t.Fatalf("conjunction = %v", ids)
	}
	// Adding a range predicate narrows further: mem in [048, 999].
	ids, _, err = d.Query(ctx,
		Predicate{Attr: "cpu", Exact: "x86_64"},
		Predicate{Attr: "os", Exact: "linux"},
		Predicate{Attr: "mem", Lo: "048", Hi: "999"},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, []string{"node-b"}) {
		t.Fatalf("3-way conjunction = %v", ids)
	}
}

func TestRangeAndPrefixPredicates(t *testing.T) {
	d := newDirectory(t, 6, 4)
	for _, s := range sampleServices() {
		if err := d.Register(ctx, s); err != nil {
			t.Fatal(err)
		}
	}
	// mem in [032, 064]: node-a (032), node-b (064), node-e (064).
	ids, _, err := d.Query(ctx, Predicate{Attr: "mem", Lo: "032", Hi: "064"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, []string{"node-a", "node-b", "node-e"}) {
		t.Fatalf("range = %v", ids)
	}
	// Inverted range is empty.
	ids, _, _ = d.Query(ctx, Predicate{Attr: "mem", Lo: "900", Hi: "100"})
	if len(ids) != 0 {
		t.Fatalf("inverted range = %v", ids)
	}
	// cpu prefix "x" -> x86_64 machines.
	ids, _, err = d.Query(ctx, Predicate{Attr: "cpu", Prefix: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, []string{"node-a", "node-b", "node-d"}) {
		t.Fatalf("prefix = %v", ids)
	}
	// Attribute presence.
	ids, _, err = d.Query(ctx, Predicate{Attr: "os"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 5 {
		t.Fatalf("presence = %v", ids)
	}
}

func TestQueryErrors(t *testing.T) {
	d := newDirectory(t, 3, 5)
	if _, _, err := d.Query(ctx); err == nil {
		t.Fatalf("empty query must fail")
	}
	if _, _, err := d.Query(ctx, Predicate{Attr: "bad=name", Exact: "x"}); err == nil {
		t.Fatalf("invalid attribute must fail")
	}
}

func TestUnregister(t *testing.T) {
	d := newDirectory(t, 5, 6)
	for _, s := range sampleServices() {
		if err := d.Register(ctx, s); err != nil {
			t.Fatal(err)
		}
	}
	if was, err := d.Unregister(ctx, "node-b"); err != nil || !was {
		t.Fatalf("unregister = %v, %v", was, err)
	}
	if was, _ := d.Unregister(ctx, "node-b"); was {
		t.Fatalf("double unregister must fail")
	}
	if err := d.Validate(ctx); err != nil {
		t.Fatal(err)
	}
	ids, _, _ := d.Query(ctx, Predicate{Attr: "cpu", Exact: "x86_64"})
	if !reflect.DeepEqual(ids, []string{"node-a", "node-d"}) {
		t.Fatalf("after unregister = %v", ids)
	}
	if d.NumServices() != 4 {
		t.Fatalf("NumServices = %d", d.NumServices())
	}
}

func TestDescribe(t *testing.T) {
	d := newDirectory(t, 3, 7)
	_ = d.Register(ctx, Service{ID: "s1", Attributes: map[string]string{"a": "1"}})
	attrs, ok := d.Describe("s1")
	if !ok || attrs["a"] != "1" {
		t.Fatalf("Describe = %v %v", attrs, ok)
	}
	attrs["a"] = "mutated"
	if a, _ := d.Describe("s1"); a["a"] != "1" {
		t.Fatalf("Describe must return a copy")
	}
	if _, ok := d.Describe("nope"); ok {
		t.Fatalf("absent service described")
	}
}

// TestPropConjunctionMatchesBruteForce registers random services and
// checks conjunctive queries against a brute-force filter.
func TestPropConjunctionMatchesBruteForce(t *testing.T) {
	d := newDirectory(t, 8, 8)
	r := rand.New(rand.NewSource(9))
	cpus := []string{"x86_64", "arm64", "sparc", "power9"}
	oss := []string{"linux", "solaris", "aix"}
	var all []Service
	for i := 0; i < 60; i++ {
		s := Service{
			ID: fmt.Sprintf("svc-%03d", i),
			Attributes: map[string]string{
				"cpu": cpus[r.Intn(len(cpus))],
				"os":  oss[r.Intn(len(oss))],
				"mem": fmt.Sprintf("%03d", 8*(1+r.Intn(32))),
			},
		}
		all = append(all, s)
		if err := d.Register(ctx, s); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Validate(ctx); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 25; trial++ {
		cpu := cpus[r.Intn(len(cpus))]
		lo := fmt.Sprintf("%03d", 8*(1+r.Intn(16)))
		hi := fmt.Sprintf("%03d", 8*(17+r.Intn(16)))
		got, _, err := d.Query(ctx,
			Predicate{Attr: "cpu", Exact: cpu},
			Predicate{Attr: "mem", Lo: lo, Hi: hi},
		)
		if err != nil {
			t.Fatal(err)
		}
		var want []string
		for _, s := range all {
			if s.Attributes["cpu"] == cpu && s.Attributes["mem"] >= lo && s.Attributes["mem"] <= hi {
				want = append(want, s.ID)
			}
		}
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		sortStrings(want)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: got %v, want %v", trial, got, want)
		}
	}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
