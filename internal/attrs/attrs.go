// Package attrs extends the DLPT with multi-attribute service
// queries, the extension the paper names explicitly ("these
// architectures ... are easy to extend to multi-attribute queries",
// Section 1) and that the related work it cites (MAAN, SWORD)
// provides over DHTs.
//
// The encoding is the standard one for trie overlays: each attribute
// pair (attr, value) of a service is declared in the PGCP tree under
// the key "attr=value", with the service identifier as data. Exact
// predicates route as discoveries, per-attribute range and prefix
// predicates route as subtree queries on the "attr=" region of the
// tree, and conjunctive multi-attribute queries intersect the
// per-predicate identifier sets at the querying client — every
// predicate resolves in parallel branches of the same tree.
//
// The directory issues every sub-query through the Backend interface
// (satisfied by any engine.Engine), so conjunctive queries run
// unchanged over the sequential core, the goroutine runtime, or the
// TCP transport.
package attrs

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"dlpt/engine"
	"dlpt/internal/keys"
)

// Sep separates attribute names from values in tree keys.
const Sep = "="

// Backend is the execution surface the directory queries through: the
// subset of engine.Engine the multi-attribute layer needs. Every
// engine satisfies it.
type Backend interface {
	Alphabet() *keys.Alphabet
	Register(ctx context.Context, key, value string) error
	RegisterBatch(ctx context.Context, entries []engine.Entry) error
	Unregister(ctx context.Context, key, value string) (bool, error)
	Discover(ctx context.Context, key string) (engine.Result, error)
	Complete(ctx context.Context, prefix string) (engine.QueryResult, error)
	Range(ctx context.Context, lo, hi string) (engine.QueryResult, error)
	Validate(ctx context.Context) error
}

// Service is a described service to register.
type Service struct {
	// ID uniquely identifies the service (e.g. an endpoint).
	ID string
	// Attributes maps attribute names to values ("cpu" -> "x86_64").
	Attributes map[string]string
}

// Predicate is one conjunct of a multi-attribute query.
type Predicate struct {
	// Attr is the attribute name.
	Attr string
	// Exact, when set, requires Attr == Exact.
	Exact string
	// Prefix, when set, requires the value to extend Prefix.
	Prefix string
	// Lo/Hi, when set (non-empty Hi), require Lo <= value <= Hi.
	Lo, Hi string
}

// Cost aggregates the routing cost of a query.
type Cost struct {
	LogicalHops  int
	PhysicalHops int
}

// Directory is a multi-attribute view over a DLPT overlay. Queries
// run concurrently; the registration mirror is guarded by its own
// lock, so no global serialization sits above the backend.
type Directory struct {
	b Backend

	// mu guards services (the registration mirror used for
	// validation and unregistering) and pending (ids reserved by an
	// in-flight Register, invisible to readers until the engine
	// writes land).
	mu       sync.RWMutex
	services map[string]map[string]string
	pending  map[string]bool
}

// NewDirectory wraps a running backend. The backend's alphabet must
// contain the separator and the attribute/value characters used.
func NewDirectory(b Backend) *Directory {
	return &Directory{
		b:        b,
		services: make(map[string]map[string]string),
		pending:  make(map[string]bool),
	}
}

func attrKey(attr, value string) string {
	return attr + Sep + value
}

func validName(s string) bool {
	return s != "" && !strings.Contains(s, Sep)
}

// Register declares every attribute pair of the service in the tree.
func (d *Directory) Register(ctx context.Context, svc Service) error {
	if svc.ID == "" {
		return fmt.Errorf("attrs: empty service id")
	}
	if len(svc.Attributes) == 0 {
		return fmt.Errorf("attrs: service %q has no attributes", svc.ID)
	}
	// Deterministic insertion order.
	names := make([]string, 0, len(svc.Attributes))
	for a := range svc.Attributes {
		if !validName(a) {
			return fmt.Errorf("attrs: invalid attribute name %q", a)
		}
		names = append(names, a)
	}
	sort.Strings(names)
	alpha := d.b.Alphabet()
	entries := make([]engine.Entry, len(names))
	for i, a := range names {
		k := attrKey(a, svc.Attributes[a])
		if !alpha.Valid(keys.Key(k)) {
			return fmt.Errorf("attrs: key %q outside overlay alphabet", k)
		}
		entries[i] = engine.Entry{Key: k, Value: svc.ID}
	}
	// Reserve the id before the engine calls so concurrent duplicate
	// registrations cannot interleave; the id stays invisible to
	// readers (Describe/Validate) until the tree writes landed.
	d.mu.Lock()
	if d.pending[svc.ID] || d.services[svc.ID] != nil {
		d.mu.Unlock()
		return fmt.Errorf("attrs: service %q already registered", svc.ID)
	}
	d.pending[svc.ID] = true
	d.mu.Unlock()

	if err := d.b.RegisterBatch(ctx, entries); err != nil {
		// A failed batch may have applied a prefix of the entries;
		// withdraw them best-effort under a fresh context (the
		// caller's may already be cancelled).
		for _, ent := range entries {
			_, _ = d.b.Unregister(context.Background(), ent.Key, svc.ID)
		}
		d.mu.Lock()
		delete(d.pending, svc.ID)
		d.mu.Unlock()
		return err
	}
	attrsCopy := make(map[string]string, len(svc.Attributes))
	for a, v := range svc.Attributes {
		attrsCopy[a] = v
	}
	d.mu.Lock()
	delete(d.pending, svc.ID)
	d.services[svc.ID] = attrsCopy
	d.mu.Unlock()
	return nil
}

// Unregister withdraws the service from every attribute key it was
// declared under. It reports whether the service was registered.
func (d *Directory) Unregister(ctx context.Context, id string) (bool, error) {
	d.mu.Lock()
	attrs, ok := d.services[id]
	if ok {
		delete(d.services, id)
	}
	d.mu.Unlock()
	if !ok {
		return false, nil
	}
	for a, v := range attrs {
		if _, err := d.b.Unregister(ctx, attrKey(a, v), id); err != nil {
			return true, err
		}
	}
	return true, nil
}

// NumServices returns the number of registered services.
func (d *Directory) NumServices() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.services)
}

// evalPredicate returns the service-id set matching one predicate.
func (d *Directory) evalPredicate(ctx context.Context, p Predicate, cost *Cost) (map[string]bool, error) {
	if !validName(p.Attr) {
		return nil, fmt.Errorf("attrs: invalid attribute %q", p.Attr)
	}
	ids := make(map[string]bool)
	switch {
	case p.Exact != "":
		res, err := d.b.Discover(ctx, attrKey(p.Attr, p.Exact))
		if err != nil {
			return nil, err
		}
		cost.LogicalHops += res.LogicalHops
		cost.PhysicalHops += res.PhysicalHops
		for _, v := range res.Values {
			ids[v] = true
		}
	case p.Prefix != "":
		q, err := d.b.Complete(ctx, attrKey(p.Attr, p.Prefix))
		if err != nil {
			return nil, err
		}
		cost.LogicalHops += q.LogicalHops
		cost.PhysicalHops += q.PhysicalHops
		if err := d.collect(ctx, q.Keys, ids, cost); err != nil {
			return nil, err
		}
	case p.Hi != "":
		if p.Hi < p.Lo {
			return ids, nil
		}
		q, err := d.b.Range(ctx, attrKey(p.Attr, p.Lo), attrKey(p.Attr, p.Hi))
		if err != nil {
			return nil, err
		}
		cost.LogicalHops += q.LogicalHops
		cost.PhysicalHops += q.PhysicalHops
		if err := d.collect(ctx, q.Keys, ids, cost); err != nil {
			return nil, err
		}
	default:
		// Attribute presence: every value under "attr=".
		q, err := d.b.Complete(ctx, p.Attr+Sep)
		if err != nil {
			return nil, err
		}
		cost.LogicalHops += q.LogicalHops
		cost.PhysicalHops += q.PhysicalHops
		if err := d.collect(ctx, q.Keys, ids, cost); err != nil {
			return nil, err
		}
	}
	return ids, nil
}

// collectConcurrency bounds the parallel per-key discoveries of a
// subtree predicate (on the TCP engine each one is a chain of real
// wire round-trips).
const collectConcurrency = 8

// collect fetches the service ids stored under each key by routed
// discovery. The discoveries are independent reads, so they run with
// bounded concurrency; cost sums are commutative, results are merged
// under a lock.
func (d *Directory) collect(ctx context.Context, ks []string, into map[string]bool, cost *Cost) error {
	if len(ks) == 0 {
		return nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	sem := make(chan struct{}, collectConcurrency)
	for _, k := range ks {
		wg.Add(1)
		sem <- struct{}{}
		go func(k string) {
			defer wg.Done()
			defer func() { <-sem }()
			res, err := d.b.Discover(ctx, k)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
					cancel() // abort the remaining in-flight lookups
				}
				return
			}
			cost.LogicalHops += res.LogicalHops
			cost.PhysicalHops += res.PhysicalHops
			for _, v := range res.Values {
				into[v] = true
			}
		}(k)
	}
	wg.Wait()
	return firstErr
}

// Query resolves the conjunction of the given predicates and returns
// the matching service ids in order, with the aggregate routing cost.
func (d *Directory) Query(ctx context.Context, preds ...Predicate) ([]string, Cost, error) {
	var cost Cost
	if len(preds) == 0 {
		return nil, cost, fmt.Errorf("attrs: empty query")
	}
	var acc map[string]bool
	for _, p := range preds {
		ids, err := d.evalPredicate(ctx, p, &cost)
		if err != nil {
			return nil, cost, err
		}
		if acc == nil {
			acc = ids
			continue
		}
		for id := range acc {
			if !ids[id] {
				delete(acc, id)
			}
		}
		if len(acc) == 0 {
			break
		}
	}
	out := make([]string, 0, len(acc))
	for id := range acc {
		out = append(out, id)
	}
	sort.Strings(out)
	return out, cost, nil
}

// Describe returns the registered attributes of a service.
func (d *Directory) Describe(id string) (map[string]string, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	attrs, ok := d.services[id]
	if !ok {
		return nil, false
	}
	out := make(map[string]string, len(attrs))
	for a, v := range attrs {
		out[a] = v
	}
	return out, true
}

// Validate cross-checks the directory against the overlay: every
// registered attribute pair must be discoverable and carry the
// service id.
func (d *Directory) Validate(ctx context.Context) error {
	if err := d.b.Validate(ctx); err != nil {
		return err
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	for id, attrs := range d.services {
		for a, v := range attrs {
			res, err := d.b.Discover(ctx, attrKey(a, v))
			if err != nil {
				return err
			}
			if !res.Found {
				return fmt.Errorf("attrs: key %q of service %q missing", attrKey(a, v), id)
			}
			found := false
			for _, got := range res.Values {
				if got == id {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("attrs: service %q missing under %q", id, attrKey(a, v))
			}
		}
	}
	return nil
}
