// Package attrs extends the DLPT with multi-attribute service
// queries, the extension the paper names explicitly ("these
// architectures ... are easy to extend to multi-attribute queries",
// Section 1) and that the related work it cites (MAAN, SWORD)
// provides over DHTs.
//
// The encoding is the standard one for trie overlays: each attribute
// pair (attr, value) of a service is declared in the PGCP tree under
// the key "attr=value", with the service identifier as data. Exact
// predicates route as discoveries, per-attribute range and prefix
// predicates route as subtree queries on the "attr=" region of the
// tree, and conjunctive multi-attribute queries intersect the
// per-predicate identifier sets at the querying client — every
// predicate resolves in parallel branches of the same tree.
package attrs

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"dlpt/internal/core"
	"dlpt/internal/keys"
)

// Sep separates attribute names from values in tree keys.
const Sep = "="

// Service is a described service to register.
type Service struct {
	// ID uniquely identifies the service (e.g. an endpoint).
	ID string
	// Attributes maps attribute names to values ("cpu" -> "x86_64").
	Attributes map[string]string
}

// Predicate is one conjunct of a multi-attribute query.
type Predicate struct {
	// Attr is the attribute name.
	Attr string
	// Exact, when set, requires Attr == Exact.
	Exact string
	// Prefix, when set, requires the value to extend Prefix.
	Prefix string
	// Lo/Hi, when set (non-empty Hi), require Lo <= value <= Hi.
	Lo, Hi string
}

// Cost aggregates the routing cost of a query.
type Cost struct {
	LogicalHops  int
	PhysicalHops int
}

// Directory is a multi-attribute view over a DLPT overlay.
type Directory struct {
	net *core.Network
	rng *rand.Rand
	// services mirrors registrations for validation and unregistering.
	services map[string]map[string]string
}

// NewDirectory wraps an existing overlay. The alphabet must contain
// the separator and the attribute/value characters used.
func NewDirectory(net *core.Network, rng *rand.Rand) *Directory {
	return &Directory{net: net, rng: rng, services: make(map[string]map[string]string)}
}

func attrKey(attr, value string) keys.Key {
	return keys.Key(attr + Sep + value)
}

func validName(s string) bool {
	return s != "" && !strings.Contains(s, Sep)
}

// Register declares every attribute pair of the service in the tree.
func (d *Directory) Register(svc Service) error {
	if svc.ID == "" {
		return fmt.Errorf("attrs: empty service id")
	}
	if len(svc.Attributes) == 0 {
		return fmt.Errorf("attrs: service %q has no attributes", svc.ID)
	}
	if _, dup := d.services[svc.ID]; dup {
		return fmt.Errorf("attrs: service %q already registered", svc.ID)
	}
	// Deterministic insertion order.
	names := make([]string, 0, len(svc.Attributes))
	for a := range svc.Attributes {
		if !validName(a) {
			return fmt.Errorf("attrs: invalid attribute name %q", a)
		}
		names = append(names, a)
	}
	sort.Strings(names)
	for _, a := range names {
		k := attrKey(a, svc.Attributes[a])
		if !d.net.Alphabet.Valid(k) {
			return fmt.Errorf("attrs: key %q outside overlay alphabet", k)
		}
	}
	for _, a := range names {
		if err := d.net.InsertData(attrKey(a, svc.Attributes[a]), svc.ID, d.rng); err != nil {
			return err
		}
	}
	attrs := make(map[string]string, len(svc.Attributes))
	for a, v := range svc.Attributes {
		attrs[a] = v
	}
	d.services[svc.ID] = attrs
	return nil
}

// Unregister withdraws the service from every attribute key it was
// declared under. It reports whether the service was registered.
func (d *Directory) Unregister(id string) bool {
	attrs, ok := d.services[id]
	if !ok {
		return false
	}
	for a, v := range attrs {
		d.net.RemoveData(attrKey(a, v), id)
	}
	delete(d.services, id)
	return true
}

// NumServices returns the number of registered services.
func (d *Directory) NumServices() int { return len(d.services) }

// evalPredicate returns the service-id set matching one predicate.
func (d *Directory) evalPredicate(p Predicate, cost *Cost) (map[string]bool, error) {
	if !validName(p.Attr) {
		return nil, fmt.Errorf("attrs: invalid attribute %q", p.Attr)
	}
	ids := make(map[string]bool)
	switch {
	case p.Exact != "":
		res := d.net.DiscoverRandom(attrKey(p.Attr, p.Exact), false, d.rng)
		cost.LogicalHops += res.LogicalHops
		cost.PhysicalHops += res.PhysicalHops
		if res.Satisfied {
			vals, ok := d.net.Lookup(attrKey(p.Attr, p.Exact), d.rng)
			if ok {
				for _, v := range vals {
					ids[v] = true
				}
			}
		}
	case p.Prefix != "":
		q := d.net.Complete(attrKey(p.Attr, p.Prefix), d.rng)
		cost.LogicalHops += q.LogicalHops
		cost.PhysicalHops += q.PhysicalHops
		d.collect(q.Keys, ids)
	case p.Hi != "":
		if p.Hi < p.Lo {
			return ids, nil
		}
		q := d.net.RangeQuery(attrKey(p.Attr, p.Lo), attrKey(p.Attr, p.Hi), d.rng)
		cost.LogicalHops += q.LogicalHops
		cost.PhysicalHops += q.PhysicalHops
		d.collect(q.Keys, ids)
	default:
		// Attribute presence: every value under "attr=".
		q := d.net.Complete(keys.Key(p.Attr+Sep), d.rng)
		cost.LogicalHops += q.LogicalHops
		cost.PhysicalHops += q.PhysicalHops
		d.collect(q.Keys, ids)
	}
	return ids, nil
}

// collect fetches the service ids stored under each key.
func (d *Directory) collect(ks []keys.Key, into map[string]bool) {
	for _, k := range ks {
		vals, ok := d.net.Lookup(k, d.rng)
		if !ok {
			continue
		}
		for _, v := range vals {
			into[v] = true
		}
	}
}

// Query resolves the conjunction of the given predicates and returns
// the matching service ids in order, with the aggregate routing cost.
func (d *Directory) Query(preds ...Predicate) ([]string, Cost, error) {
	var cost Cost
	if len(preds) == 0 {
		return nil, cost, fmt.Errorf("attrs: empty query")
	}
	var acc map[string]bool
	for _, p := range preds {
		ids, err := d.evalPredicate(p, &cost)
		if err != nil {
			return nil, cost, err
		}
		if acc == nil {
			acc = ids
			continue
		}
		for id := range acc {
			if !ids[id] {
				delete(acc, id)
			}
		}
		if len(acc) == 0 {
			break
		}
	}
	out := make([]string, 0, len(acc))
	for id := range acc {
		out = append(out, id)
	}
	sort.Strings(out)
	return out, cost, nil
}

// Describe returns the registered attributes of a service.
func (d *Directory) Describe(id string) (map[string]string, bool) {
	attrs, ok := d.services[id]
	if !ok {
		return nil, false
	}
	out := make(map[string]string, len(attrs))
	for a, v := range attrs {
		out[a] = v
	}
	return out, true
}

// Validate cross-checks the directory against the overlay: every
// registered attribute pair must be discoverable and carry the
// service id.
func (d *Directory) Validate() error {
	if err := d.net.Validate(); err != nil {
		return err
	}
	for id, attrs := range d.services {
		for a, v := range attrs {
			vals, ok := d.net.Lookup(attrKey(a, v), d.rng)
			if !ok {
				return fmt.Errorf("attrs: key %q of service %q missing", attrKey(a, v), id)
			}
			found := false
			for _, got := range vals {
				if got == id {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("attrs: service %q missing under %q", id, attrKey(a, v))
			}
		}
	}
	return nil
}
