// Package attrs extends the DLPT with multi-attribute service
// queries, the extension the paper names explicitly ("these
// architectures ... are easy to extend to multi-attribute queries",
// Section 1) and that the related work it cites (MAAN, SWORD)
// provides over DHTs.
//
// The encoding is the standard one for trie overlays: each attribute
// pair (attr, value) of a service is declared in the PGCP tree under
// the key "attr=value", with the service identifier as data. Exact
// predicates route as discoveries, per-attribute range and prefix
// predicates route as subtree queries on the "attr=" region of the
// tree, and conjunctive multi-attribute queries intersect the
// per-predicate identifier sets at the querying client — every
// predicate resolves in parallel branches of the same tree.
//
// The directory issues every sub-query through the Backend interface
// (satisfied by any engine.Engine), so conjunctive queries run
// unchanged over the sequential core, the goroutine runtime, or the
// TCP transport.
package attrs

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"dlpt/engine"
	"dlpt/internal/keys"
	"dlpt/internal/trie"
)

// Sep separates attribute names from values in tree keys.
const Sep = "="

// Backend is the execution surface the directory queries through: the
// subset of engine.Engine the multi-attribute layer needs. Every
// engine satisfies it.
type Backend interface {
	Alphabet() *keys.Alphabet
	Register(ctx context.Context, key, value string) error
	RegisterBatch(ctx context.Context, entries []engine.Entry) error
	Unregister(ctx context.Context, key, value string) (bool, error)
	Discover(ctx context.Context, key string) (engine.Result, error)
	Query(ctx context.Context, q engine.Query) (engine.Stream, error)
	Complete(ctx context.Context, prefix string) (engine.QueryResult, error)
	Range(ctx context.Context, lo, hi string) (engine.QueryResult, error)
	Snapshot(ctx context.Context) (*trie.Tree, error)
	Validate(ctx context.Context) error
}

// Service is a described service to register.
type Service struct {
	// ID uniquely identifies the service (e.g. an endpoint).
	ID string
	// Attributes maps attribute names to values ("cpu" -> "x86_64").
	Attributes map[string]string
}

// Predicate is one conjunct of a multi-attribute query.
type Predicate struct {
	// Attr is the attribute name.
	Attr string
	// Exact, when set, requires Attr == Exact.
	Exact string
	// Prefix, when set, requires the value to extend Prefix.
	Prefix string
	// Lo/Hi, when set (non-empty Hi), require Lo <= value <= Hi.
	Lo, Hi string
}

// Cost aggregates the routing cost of a query.
type Cost struct {
	LogicalHops  int
	PhysicalHops int
}

// Directory is a multi-attribute view over a DLPT overlay. Queries
// run concurrently; the registration mirror is guarded by its own
// lock, so no global serialization sits above the backend.
type Directory struct {
	b Backend

	// mu guards services (the registration mirror used for
	// validation and unregistering) and pending (ids reserved by an
	// in-flight Register, invisible to readers until the engine
	// writes land).
	mu       sync.RWMutex
	services map[string]map[string]string // guarded by mu
	pending  map[string]bool              // guarded by mu
}

// NewDirectory wraps a running backend. The backend's alphabet must
// contain the separator and the attribute/value characters used.
func NewDirectory(b Backend) *Directory {
	return &Directory{
		b:        b,
		services: make(map[string]map[string]string),
		pending:  make(map[string]bool),
	}
}

func attrKey(attr, value string) string {
	return attr + Sep + value
}

func validName(s string) bool {
	return s != "" && !strings.Contains(s, Sep)
}

// Register declares every attribute pair of the service in the tree.
func (d *Directory) Register(ctx context.Context, svc Service) error {
	if svc.ID == "" {
		return fmt.Errorf("attrs: empty service id")
	}
	if len(svc.Attributes) == 0 {
		return fmt.Errorf("attrs: service %q has no attributes", svc.ID)
	}
	// Deterministic insertion order.
	names := make([]string, 0, len(svc.Attributes))
	for a := range svc.Attributes {
		if !validName(a) {
			return fmt.Errorf("attrs: invalid attribute name %q", a)
		}
		names = append(names, a)
	}
	sort.Strings(names)
	alpha := d.b.Alphabet()
	entries := make([]engine.Entry, len(names))
	for i, a := range names {
		k := attrKey(a, svc.Attributes[a])
		if !alpha.Valid(keys.Key(k)) {
			return fmt.Errorf("attrs: key %q outside overlay alphabet", k)
		}
		entries[i] = engine.Entry{Key: k, Value: svc.ID}
	}
	// Reserve the id before the engine calls so concurrent duplicate
	// registrations cannot interleave; the id stays invisible to
	// readers (Describe/Validate) until the tree writes landed.
	d.mu.Lock()
	if d.pending[svc.ID] || d.services[svc.ID] != nil {
		d.mu.Unlock()
		return fmt.Errorf("attrs: service %q already registered", svc.ID)
	}
	d.pending[svc.ID] = true
	d.mu.Unlock()

	if err := d.b.RegisterBatch(ctx, entries); err != nil {
		// A failed batch may have applied a prefix of the entries;
		// withdraw them best-effort detached from the caller's
		// cancellation (it may already have fired) but keeping its
		// values.
		for _, ent := range entries {
			_, _ = d.b.Unregister(context.WithoutCancel(ctx), ent.Key, svc.ID)
		}
		d.mu.Lock()
		delete(d.pending, svc.ID)
		d.mu.Unlock()
		return err
	}
	attrsCopy := make(map[string]string, len(svc.Attributes))
	for a, v := range svc.Attributes {
		attrsCopy[a] = v
	}
	d.mu.Lock()
	delete(d.pending, svc.ID)
	d.services[svc.ID] = attrsCopy
	d.mu.Unlock()
	return nil
}

// Unregister withdraws the service from every attribute key it was
// declared under. It reports whether the service was registered.
func (d *Directory) Unregister(ctx context.Context, id string) (bool, error) {
	d.mu.Lock()
	attrs, ok := d.services[id]
	if ok {
		delete(d.services, id)
	}
	d.mu.Unlock()
	if !ok {
		return false, nil
	}
	for a, v := range attrs {
		if _, err := d.b.Unregister(ctx, attrKey(a, v), id); err != nil {
			return true, err
		}
	}
	return true, nil
}

// Rehydrate rebuilds the registration mirror from the overlay's tree
// state — the restore path after a cold restart, where the attribute
// keys came back from disk but the per-service maps did not. Every
// "attr=value" data node's ids are folded back into the service
// descriptions (attribute names cannot contain the separator, so the
// first separator splits unambiguously). Existing mirror entries are
// replaced wholesale.
func (d *Directory) Rehydrate(ctx context.Context) error {
	snap, err := d.b.Snapshot(ctx)
	if err != nil {
		return err
	}
	services := make(map[string]map[string]string)
	var walkErr error
	snap.Walk(func(n *trie.Node) {
		if walkErr != nil || !n.HasData() {
			return
		}
		attr, value, ok := strings.Cut(string(n.Label), Sep)
		if !ok {
			walkErr = fmt.Errorf("attrs: rehydrate: key %q has no separator", n.Label)
			return
		}
		for id := range n.Data {
			if svc, ok := services[id]; ok {
				svc[attr] = value
			} else {
				services[id] = map[string]string{attr: value}
			}
		}
	})
	if walkErr != nil {
		return walkErr
	}
	d.mu.Lock()
	d.services = services
	d.mu.Unlock()
	return nil
}

// NumServices returns the number of registered services.
func (d *Directory) NumServices() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.services)
}

// predEval is the evaluation state of one predicate: the candidate
// attribute keys its subtree query matched and, once materialized,
// the sorted set of service ids declared under them. The sorted sets
// are what the conjunction merges — a predicate whose turn never
// comes (because the running intersection already emptied) is never
// materialized and issues no discoveries at all.
type predEval struct {
	p    Predicate
	keys []string // candidate attr=value keys, lexicographic
	ids  []string // sorted unique service ids; valid once done
	done bool
}

// candidateKeys enumerates the attribute keys matching one predicate
// by routed subtree query (exact predicates name their key
// statically).
func (d *Directory) candidateKeys(ctx context.Context, p Predicate, cost *Cost) ([]string, error) {
	if !validName(p.Attr) {
		return nil, fmt.Errorf("attrs: invalid attribute %q", p.Attr)
	}
	var q engine.Query
	switch {
	case p.Exact != "":
		return []string{attrKey(p.Attr, p.Exact)}, nil
	case p.Prefix != "":
		q = engine.Query{Kind: engine.QueryComplete, Prefix: attrKey(p.Attr, p.Prefix)}
	case p.Hi != "":
		if p.Hi < p.Lo {
			return nil, nil
		}
		q = engine.Query{Kind: engine.QueryRange,
			Lo: attrKey(p.Attr, p.Lo), Hi: attrKey(p.Attr, p.Hi)}
	default:
		// Attribute presence: every value under "attr=".
		q = engine.Query{Kind: engine.QueryComplete, Prefix: p.Attr + Sep}
	}
	res, err := engine.CollectQuery(ctx, d.b, q)
	if err != nil {
		return nil, err
	}
	cost.LogicalHops += res.LogicalHops
	cost.PhysicalHops += res.PhysicalHops
	return res.Keys, nil
}

// discoverIDs fetches the service ids declared under one attribute
// key by routed discovery.
func (d *Directory) discoverIDs(ctx context.Context, key string, cost *Cost) ([]string, error) {
	res, err := d.b.Discover(ctx, key)
	if err != nil {
		return nil, err
	}
	cost.LogicalHops += res.LogicalHops
	cost.PhysicalHops += res.PhysicalHops
	return res.Values, nil
}

// discoverConcurrency bounds the parallel per-key discoveries of the
// driving predicate (on the TCP engine each one is a chain of real
// wire round-trips).
const discoverConcurrency = 8

// discoverChunk fetches the ids under each key concurrently,
// preserving key order; cost sums are commutative and merged under a
// lock. The first error cancels the chunk's remaining lookups.
func (d *Directory) discoverChunk(ctx context.Context, ks []string, cost *Cost) ([][]string, error) {
	if len(ks) == 1 {
		ids, err := d.discoverIDs(ctx, ks[0], cost)
		return [][]string{ids}, err
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	out := make([][]string, len(ks))
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for i, k := range ks {
		wg.Add(1)
		//dlptlint:ignore determinism out[i] keeps key order regardless of completion order; cost merge is commutative
		go func(i int, k string) {
			defer wg.Done()
			res, err := d.b.Discover(cctx, k)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
					cancel() // abort the remaining in-flight lookups
				}
				return
			}
			cost.LogicalHops += res.LogicalHops
			cost.PhysicalHops += res.PhysicalHops
			out[i] = res.Values
		}(i, k)
	}
	wg.Wait()
	return out, firstErr
}

// materialize discovers every candidate key's ids — prefetched
// discoverConcurrency keys at a time, since each is an independent
// routed read — and folds them into one sorted, deduplicated set.
// Each key is looked up exactly once; the old lazy membership probes
// issued the same lookups one at a time, sequentially, as
// intersection tests demanded them.
func (pe *predEval) materialize(ctx context.Context, d *Directory, cost *Cost) error {
	if pe.done {
		return nil
	}
	var all []string
	for start := 0; start < len(pe.keys); start += discoverConcurrency {
		end := start + discoverConcurrency
		if end > len(pe.keys) {
			end = len(pe.keys)
		}
		chunk, err := d.discoverChunk(ctx, pe.keys[start:end], cost)
		if err != nil {
			return err
		}
		for _, ids := range chunk {
			all = append(all, ids...)
		}
	}
	sort.Strings(all)
	ids := all[:0]
	for i, id := range all {
		if i > 0 && all[i-1] == id {
			continue
		}
		ids = append(ids, id)
	}
	pe.ids = ids
	pe.done = true
	return nil
}

// intersectSorted narrows a (ascending, unique) to the ids also
// present in b (ascending, unique), in place.
func intersectSorted(a, b []string) []string {
	out := a[:0]
	j := 0
	for _, id := range a {
		for j < len(b) && b[j] < id {
			j++
		}
		if j == len(b) {
			break
		}
		if b[j] == id {
			out = append(out, id)
			j++
		}
	}
	return out
}

// plan builds the evaluation order of a conjunctive query: every
// predicate's candidate keys are enumerated (one routed subtree query
// each, keys arriving in sorted order), and the predicates are
// arranged fewest-candidates-first so the cheapest stream seeds the
// merge and the running intersection narrows as early as possible.
func (d *Directory) plan(ctx context.Context, preds []Predicate, cost *Cost) ([]*predEval, error) {
	if len(preds) == 0 {
		return nil, fmt.Errorf("attrs: empty query")
	}
	evals := make([]*predEval, len(preds))
	for i, p := range preds {
		ks, err := d.candidateKeys(ctx, p, cost)
		if err != nil {
			return nil, err
		}
		evals[i] = &predEval{p: p, keys: ks}
	}
	sort.SliceStable(evals, func(a, b int) bool {
		return len(evals[a].keys) < len(evals[b].keys)
	})
	return evals, nil
}

// runQuery streams the conjunction as a sorted merge across the
// per-predicate id streams: each predicate materializes (in
// fewest-candidates-first order) into one ascending id set and the
// running intersection merges pairwise through them. An intersection
// that empties short-circuits the remaining predicates before they
// issue a single discovery. Matches yield in ascending id order;
// yield returning false stops the stream.
func (d *Directory) runQuery(ctx context.Context, evals []*predEval, cost *Cost,
	yield func(id string, err error) bool) {

	var cur []string
	for i, pe := range evals {
		if i > 0 && len(cur) == 0 {
			return
		}
		if err := pe.materialize(ctx, d, cost); err != nil {
			yield("", err)
			return
		}
		if i == 0 {
			cur = pe.ids
		} else {
			cur = intersectSorted(cur, pe.ids)
		}
	}
	for _, id := range cur {
		if !yield(id, nil) {
			return
		}
	}
}

// QuerySeq streams the service ids matching every predicate in
// ascending order, as the sorted merge across the per-predicate id
// streams produces them. The consumer breaking out of the loop stops
// the evaluation.
func (d *Directory) QuerySeq(ctx context.Context, preds ...Predicate) func(yield func(string, error) bool) {
	return func(yield func(string, error) bool) {
		var cost Cost
		evals, err := d.plan(ctx, preds, &cost)
		if err != nil {
			yield("", err)
			return
		}
		d.runQuery(ctx, evals, &cost, yield)
	}
}

// Query resolves the conjunction of the given predicates and returns
// the matching service ids in order, with the aggregate routing cost.
// It is a thin wrapper draining the same incremental evaluation
// QuerySeq streams.
func (d *Directory) Query(ctx context.Context, preds ...Predicate) ([]string, Cost, error) {
	var cost Cost
	evals, err := d.plan(ctx, preds, &cost)
	if err != nil {
		return nil, cost, err
	}
	var out []string
	var firstErr error
	d.runQuery(ctx, evals, &cost, func(id string, err error) bool {
		if err != nil {
			firstErr = err
			return false
		}
		out = append(out, id)
		return true
	})
	if firstErr != nil {
		return nil, cost, firstErr
	}
	return out, cost, nil
}

// Describe returns the registered attributes of a service.
func (d *Directory) Describe(id string) (map[string]string, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	attrs, ok := d.services[id]
	if !ok {
		return nil, false
	}
	out := make(map[string]string, len(attrs))
	for a, v := range attrs {
		out[a] = v
	}
	return out, true
}

// Validate cross-checks the directory against the overlay: every
// registered attribute pair must be discoverable and carry the
// service id.
func (d *Directory) Validate(ctx context.Context) error {
	if err := d.b.Validate(ctx); err != nil {
		return err
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	for id, attrs := range d.services {
		for a, v := range attrs {
			res, err := d.b.Discover(ctx, attrKey(a, v))
			if err != nil {
				return err
			}
			if !res.Found {
				return fmt.Errorf("attrs: key %q of service %q missing", attrKey(a, v), id)
			}
			found := false
			for _, got := range res.Values {
				if got == id {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("attrs: service %q missing under %q", id, attrKey(a, v))
			}
		}
	}
	return nil
}
