// Package metrics renders simulation results the way the paper
// reports them: time-series suitable for gnuplot-style plotting (the
// figures) and aligned ASCII tables (the tables), plus CSV output.
package metrics

import (
	"fmt"
	"io"
	"strings"
)

// Column is one named series of a plot/table.
type Column struct {
	Name   string
	Values []float64
}

// Dataset is a set of columns sharing an index column (e.g. time).
type Dataset struct {
	Title   string
	Index   Column
	Columns []Column
}

// NewDataset creates a dataset with the given title and index.
func NewDataset(title, indexName string, index []float64) *Dataset {
	return &Dataset{Title: title, Index: Column{Name: indexName, Values: index}}
}

// AddColumn appends a series; its length must match the index.
func (d *Dataset) AddColumn(name string, values []float64) error {
	if len(values) != len(d.Index.Values) {
		return fmt.Errorf("metrics: column %q has %d values, index has %d",
			name, len(values), len(d.Index.Values))
	}
	d.Columns = append(d.Columns, Column{Name: name, Values: values})
	return nil
}

// WriteCSV emits the dataset as CSV with a header row.
func (d *Dataset) WriteCSV(w io.Writer) error {
	headers := []string{d.Index.Name}
	for _, c := range d.Columns {
		headers = append(headers, c.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(headers, ",")); err != nil {
		return err
	}
	for i := range d.Index.Values {
		row := []string{formatFloat(d.Index.Values[i])}
		for _, c := range d.Columns {
			row = append(row, formatFloat(c.Values[i]))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// WriteGnuplot emits whitespace-separated columns with a commented
// header, the format the paper's figures were plotted from.
func (d *Dataset) WriteGnuplot(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n", d.Title); err != nil {
		return err
	}
	headers := []string{"# " + d.Index.Name}
	for _, c := range d.Columns {
		headers = append(headers, c.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(headers, "\t")); err != nil {
		return err
	}
	for i := range d.Index.Values {
		row := []string{formatFloat(d.Index.Values[i])}
		for _, c := range d.Columns {
			row = append(row, formatFloat(c.Values[i]))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	return nil
}

func formatFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.3f", v)
}

// Table is an aligned ASCII table with string cells.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row, padding or truncating to the header width.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the aligned table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		_, err := fmt.Fprintf(w, "| %s |\n", strings.Join(parts, " | "))
		return err
	}
	rule := make([]string, len(widths))
	for i, wd := range widths {
		rule[i] = strings.Repeat("-", wd)
	}
	if err := writeRow(t.Headers); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "|-%s-|\n", strings.Join(rule, "-+-")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Pct formats a ratio as "12.34%".
func Pct(v float64) string { return fmt.Sprintf("%.2f%%", v) }

// F2 formats a float with two decimals.
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }
