package metrics

import (
	"strings"
	"testing"
)

func TestDatasetCSV(t *testing.T) {
	d := NewDataset("fig", "time", []float64{0, 1, 2})
	if err := d.AddColumn("mlt", []float64{10, 20.5, 30}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddColumn("kc", []float64{5, 6, 7}); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := d.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("CSV lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "time,mlt,kc" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "0,10,5" {
		t.Fatalf("row 0 = %q", lines[1])
	}
	if !strings.Contains(lines[2], "20.500") {
		t.Fatalf("float formatting wrong: %q", lines[2])
	}
}

func TestDatasetColumnLengthMismatch(t *testing.T) {
	d := NewDataset("fig", "t", []float64{0, 1})
	if err := d.AddColumn("x", []float64{1}); err == nil {
		t.Fatalf("length mismatch must error")
	}
}

func TestDatasetGnuplot(t *testing.T) {
	d := NewDataset("Figure 4", "time", []float64{0, 1})
	_ = d.AddColumn("MLT", []float64{98, 97})
	var b strings.Builder
	if err := d.WriteGnuplot(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "# Figure 4\n") {
		t.Fatalf("missing title comment:\n%s", out)
	}
	if !strings.Contains(out, "# time\tMLT") {
		t.Fatalf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "0\t98") {
		t.Fatalf("missing data row:\n%s", out)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Table 1", "Load", "MLT", "KC")
	tb.AddRow("5%", "39.62%", "38.58%")
	tb.AddRow("10%", "103.41%")
	s := tb.String()
	if !strings.Contains(s, "Table 1") {
		t.Fatalf("missing title:\n%s", s)
	}
	if !strings.Contains(s, "| Load") {
		t.Fatalf("missing header:\n%s", s)
	}
	if !strings.Contains(s, "39.62%") {
		t.Fatalf("missing cell:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	// Title + header + rule + 2 rows.
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), s)
	}
	// All table lines equally wide (alignment).
	w := len(lines[1])
	for _, l := range lines[1:] {
		if len(l) != w {
			t.Fatalf("unaligned line %q:\n%s", l, s)
		}
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("only")
	if len(tb.Rows[0]) != 3 {
		t.Fatalf("row must be padded to header width")
	}
	if tb.Rows[0][1] != "" || tb.Rows[0][2] != "" {
		t.Fatalf("padding cells must be empty")
	}
}

func TestFormatHelpers(t *testing.T) {
	if Pct(12.345) != "12.35%" {
		t.Fatalf("Pct = %q", Pct(12.345))
	}
	if F2(1.005) == "" {
		t.Fatalf("F2 empty")
	}
	if formatFloat(3) != "3" {
		t.Fatalf("integers must render bare: %q", formatFloat(3))
	}
	if formatFloat(3.14159) != "3.142" {
		t.Fatalf("floats must render 3 decimals: %q", formatFloat(3.14159))
	}
}
