package leakcheck_test

import (
	"testing"
	"time"

	"dlpt/internal/leakcheck"
)

// TestCheckDetectsLeak proves the checker sees a parked goroutine and
// stops seeing it once it exits — otherwise the TestMain hooks in the
// concurrent packages would be asserting nothing.
func TestCheckDetectsLeak(t *testing.T) {
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-stop
	}()

	leaked := leakcheck.Check(50 * time.Millisecond)
	if len(leaked) == 0 {
		t.Fatal("Check missed a parked goroutine")
	}

	close(stop)
	<-done
	if leaked := leakcheck.Check(5 * time.Second); len(leaked) != 0 {
		t.Errorf("Check still reports %d goroutine(s) after the leak exited:\n%s", len(leaked), leaked[0])
	}
}
