// Package leakcheck is a small in-repo stand-in for
// go.uber.org/goleak: it fails a test binary whose goroutines outlive
// its tests. The concurrent packages — engines spawning peer
// goroutines, the transport's accept/demux loops, the daemon's
// control plane — all promise that Stop/Close joins every goroutine
// they started; a leak means a Stop path lost one, which later
// surfaces as flaky ports, fd exhaustion, or a race against a
// half-dead cluster.
//
// Usage, in one file per test package:
//
//	func TestMain(m *testing.M) { leakcheck.Main(m) }
//
// After the package's tests pass, Main snapshots the goroutine stacks
// and retries for a grace period while shutdown stragglers drain.
// Anything still alive then — other than the runtime's own
// bookkeeping goroutines — is printed and fails the binary.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// Main runs m's tests and then fails the binary if goroutines leaked.
func Main(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if leaked := Check(5 * time.Second); len(leaked) > 0 {
			fmt.Fprintf(os.Stderr, "leakcheck: %d goroutine(s) outlived the tests:\n\n%s\n",
				len(leaked), strings.Join(leaked, "\n\n"))
			code = 1
		}
	}
	os.Exit(code)
}

// Check polls until only expected goroutines remain or the grace
// period ends, returning the stacks of the leaked goroutines (nil
// when clean). Exported for tests that want a mid-run assertion after
// stopping a cluster.
func Check(grace time.Duration) []string {
	deadline := time.Now().Add(grace)
	for {
		leaked := offenders()
		if len(leaked) == 0 || time.Now().After(deadline) {
			return leaked
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// offenders returns the stacks of goroutines that are neither the
// current one nor expected runtime/testing infrastructure.
func offenders() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var leaked []string
	for _, g := range strings.Split(string(buf), "\n\n") {
		if g == "" || !expected(g) {
			leaked = append(leaked, g)
		}
	}
	return leaked
}

// expectedPrefixes are top-frame functions of goroutines that
// legitimately survive the tests: the runtime's helpers, the testing
// framework itself, and signal handling.
var expectedPrefixes = []string{
	"testing.",
	"runtime.",
	"os/signal.",
}

func expected(stack string) bool {
	lines := strings.Split(stack, "\n")
	if len(lines) == 0 {
		return true
	}
	// The checker's own goroutine (TestMain → Main → Check).
	if strings.Contains(stack, "leakcheck.") {
		return true
	}
	if len(lines) < 2 {
		return true
	}
	top := strings.TrimSpace(lines[1])
	for _, p := range expectedPrefixes {
		if strings.HasPrefix(top, p) {
			return true
		}
	}
	return false
}
