package trie

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"dlpt/internal/keys"
)

// Catalogue is the serialized form of a tree: the declared keys and
// their registered values. Structural nodes are not serialized — they
// are derivable (the PGCP tree over a key set is unique), so the
// format survives implementation changes.
type Catalogue map[string][]string

// Export writes the tree's catalogue as deterministic JSON.
func (t *Tree) Export(w io.Writer) error {
	cat := make(Catalogue)
	t.Walk(func(n *Node) {
		if !n.HasData() {
			return
		}
		vals := make([]string, 0, len(n.Data))
		for v := range n.Data {
			vals = append(vals, v)
		}
		sort.Strings(vals)
		cat[string(n.Label)] = vals
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(cat)
}

// Import reads a catalogue and rebuilds the tree.
func Import(r io.Reader) (*Tree, error) {
	var cat Catalogue
	if err := json.NewDecoder(r).Decode(&cat); err != nil {
		return nil, fmt.Errorf("trie: import: %w", err)
	}
	ks := make([]string, 0, len(cat))
	for k := range cat {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	t := New()
	for _, k := range ks {
		for _, v := range cat[k] {
			t.Insert(keys.Key(k), v)
		}
		if len(cat[k]) == 0 {
			t.InsertKey(keys.Key(k))
		}
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("trie: imported catalogue invalid: %w", err)
	}
	return t, nil
}
