package trie

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"dlpt/internal/keys"
)

func mustValidate(t *testing.T, tr *Tree) {
	t.Helper()
	if err := tr.Validate(); err != nil {
		t.Fatalf("invalid tree: %v\n%s", err, tr)
	}
}

func insertAll(tr *Tree, ks ...keys.Key) {
	for _, k := range ks {
		tr.InsertKey(k)
	}
}

// TestPaperFigure1a reproduces Figure 1(a): inserting binary keys 01,
// 10101, 10111, 101111 must create structural nodes 101 and ε.
func TestPaperFigure1a(t *testing.T) {
	tr := New()
	insertAll(tr, "01", "10101", "10111", "101111")
	mustValidate(t, tr)
	labels := tr.Labels()
	want := []keys.Key{"", "01", "101", "10101", "10111", "101111"}
	if !reflect.DeepEqual(labels, want) {
		t.Fatalf("labels = %v, want %v", labels, want)
	}
	// ε and 101 are structural (non-filled in the figure).
	for _, l := range []keys.Key{"", "101"} {
		n, ok := tr.Lookup(l)
		if !ok {
			t.Fatalf("missing node %q", l)
		}
		if n.HasData() {
			t.Fatalf("node %q should be structural", l)
		}
	}
	if tr.Len() != 6 || tr.NumKeys() != 4 {
		t.Fatalf("Len=%d NumKeys=%d, want 6 and 4", tr.Len(), tr.NumKeys())
	}
	// 101111 hangs below 10111.
	n, _ := tr.Lookup("101111")
	if n.Parent.Label != keys.Key("10111") {
		t.Fatalf("parent of 101111 = %q, want 10111", n.Parent.Label)
	}
}

// TestPaperFigure1b builds the BLAS-routine variant of Figure 1(b):
// no hashing required, names used directly.
func TestPaperFigure1b(t *testing.T) {
	tr := New()
	insertAll(tr, "DTRSM", "DTRMM", "DGEMM", "SGEMM", "STRSM")
	mustValidate(t, tr)
	// A structural node DTR must exist as PGCP of DTRSM/DTRMM.
	n, ok := tr.Lookup("DTR")
	if !ok || n.HasData() {
		t.Fatalf("expected structural node DTR")
	}
	if _, ok := tr.Lookup("D"); !ok {
		t.Fatalf("expected structural node D (PGCP of DTR*, DGEMM)")
	}
	got := tr.Keys()
	want := []keys.Key{"DGEMM", "DTRMM", "DTRSM", "SGEMM", "STRSM"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("keys = %v, want %v", got, want)
	}
}

func TestInsertIntoEmpty(t *testing.T) {
	tr := New()
	n := tr.InsertKey("101")
	mustValidate(t, tr)
	if tr.Root() != n || tr.Len() != 1 || tr.NumKeys() != 1 {
		t.Fatalf("single insert should make the key the root")
	}
}

func TestInsertDuplicateKey(t *testing.T) {
	tr := New()
	tr.Insert("101", "a")
	tr.Insert("101", "b")
	tr.Insert("101", "a")
	mustValidate(t, tr)
	if tr.Len() != 1 || tr.NumKeys() != 1 {
		t.Fatalf("duplicates must not create nodes")
	}
	n, _ := tr.Lookup("101")
	if len(n.Data) != 2 {
		t.Fatalf("data set size = %d, want 2", len(n.Data))
	}
}

func TestInsertPrefixOfExisting(t *testing.T) {
	tr := New()
	insertAll(tr, "10111", "101")
	mustValidate(t, tr)
	if tr.Root().Label != keys.Key("101") {
		t.Fatalf("root = %q, want 101", tr.Root().Label)
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (no structural node needed)", tr.Len())
	}
}

func TestInsertExtensionOfExisting(t *testing.T) {
	tr := New()
	insertAll(tr, "101", "10111")
	mustValidate(t, tr)
	n, _ := tr.Lookup("10111")
	if n.Parent.Label != keys.Key("101") {
		t.Fatalf("10111 must hang below 101")
	}
}

func TestInsertSiblingCreatesPGCPParent(t *testing.T) {
	tr := New()
	insertAll(tr, "100", "101")
	mustValidate(t, tr)
	if tr.Root().Label != keys.Key("10") {
		t.Fatalf("root = %q, want structural 10", tr.Root().Label)
	}
	if tr.Root().HasData() {
		t.Fatalf("structural root must be dataless")
	}
}

func TestInsertDisjointKeysRootEpsilon(t *testing.T) {
	tr := New()
	insertAll(tr, "0abc", "1xyz")
	mustValidate(t, tr)
	if tr.Root().Label != keys.Epsilon {
		t.Fatalf("root = %q, want ε", tr.Root().Label)
	}
}

func TestInsertSplitsChild(t *testing.T) {
	tr := New()
	insertAll(tr, "abcx", "abd")
	// Now insert key diverging inside child "abcx" under root "ab".
	insertAll(tr, "abcy")
	mustValidate(t, tr)
	n, ok := tr.Lookup("abc")
	if !ok || n.HasData() {
		t.Fatalf("expected structural abc node")
	}
	if n.NumChildren() != 2 {
		t.Fatalf("abc should have 2 children, got %d", n.NumChildren())
	}
}

func TestInsertKeyEqualsGCPBecomesParent(t *testing.T) {
	tr := New()
	insertAll(tr, "abcx", "abd", "abc")
	mustValidate(t, tr)
	n, ok := tr.Lookup("abc")
	if !ok || !n.HasData() {
		t.Fatalf("abc must exist with data")
	}
	c, ok := tr.Lookup("abcx")
	if !ok || c.Parent != n {
		t.Fatalf("abcx must be child of abc")
	}
}

func TestLookup(t *testing.T) {
	tr := New()
	insertAll(tr, "01", "10101", "10111", "101111")
	for _, k := range []keys.Key{"01", "10101", "10111", "101111", "101", ""} {
		if _, ok := tr.Lookup(k); !ok {
			t.Errorf("Lookup(%q) failed", k)
		}
	}
	for _, k := range []keys.Key{"1", "10", "0", "1010", "1011110", "2"} {
		if _, ok := tr.Lookup(k); ok {
			t.Errorf("Lookup(%q) should fail", k)
		}
	}
}

func TestLookupEmptyTree(t *testing.T) {
	tr := New()
	if _, ok := tr.Lookup("x"); ok {
		t.Fatalf("lookup in empty tree must fail")
	}
	if tr.LongestPrefixNode("x") != nil {
		t.Fatalf("LongestPrefixNode in empty tree must be nil")
	}
}

func TestLongestPrefixNode(t *testing.T) {
	tr := New()
	insertAll(tr, "01", "10101", "10111", "101111")
	cases := []struct {
		k    keys.Key
		want keys.Key
	}{
		{"10101", "10101"},
		{"101010", "10101"},
		{"1011", "101"},
		{"11", ""},
		{"011", "01"},
	}
	for _, c := range cases {
		n := tr.LongestPrefixNode(c.k)
		if n == nil || n.Label != c.want {
			t.Errorf("LongestPrefixNode(%q) = %v, want %q", c.k, n, c.want)
		}
	}
	// Root label not a prefix of k: possible when root is not ε.
	tr2 := New()
	insertAll(tr2, "abc")
	if tr2.LongestPrefixNode("xyz") != nil {
		t.Fatalf("no prefix node should be found")
	}
}

func TestBestChild(t *testing.T) {
	tr := New()
	insertAll(tr, "10101", "10111", "01")
	root := tr.Root() // ε
	q := root.BestChild("10")
	if q == nil || q.Label != keys.Key("101") {
		t.Fatalf("BestChild(10) = %v, want 101", q)
	}
	if root.BestChild("2") != nil {
		t.Fatalf("no child shares a prefix with 2")
	}
}

func TestComplete(t *testing.T) {
	tr := New()
	insertAll(tr, "sgemm", "sgemv", "strsm", "dgemm", "dgemv", "saxpy")
	got := tr.Complete("sge", 0)
	want := []keys.Key{"sgemm", "sgemv"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Complete(sge) = %v, want %v", got, want)
	}
	got = tr.Complete("s", 0)
	want = []keys.Key{"saxpy", "sgemm", "sgemv", "strsm"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Complete(s) = %v, want %v", got, want)
	}
	if got := tr.Complete("s", 2); len(got) != 2 {
		t.Fatalf("limit ignored: %v", got)
	}
	if got := tr.Complete("", 0); len(got) != 6 {
		t.Fatalf("Complete(ε) should return all keys, got %v", got)
	}
	if got := tr.Complete("zzz", 0); got != nil {
		t.Fatalf("Complete(zzz) = %v, want none", got)
	}
	// Exact key counts as its own completion.
	if got := tr.Complete("saxpy", 0); !reflect.DeepEqual(got, []keys.Key{"saxpy"}) {
		t.Fatalf("Complete(saxpy) = %v", got)
	}
}

func TestCompleteEmptyTree(t *testing.T) {
	if got := New().Complete("a", 0); got != nil {
		t.Fatalf("Complete on empty = %v", got)
	}
}

func TestRange(t *testing.T) {
	tr := New()
	insertAll(tr, "dgemm", "dgemv", "saxpy", "sgemm", "sgemv", "strsm")
	got := tr.Range("saxpy", "sgemv", 0)
	want := []keys.Key{"saxpy", "sgemm", "sgemv"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Range = %v, want %v", got, want)
	}
	if got := tr.Range("a", "z", 0); len(got) != 6 {
		t.Fatalf("full range = %v", got)
	}
	if got := tr.Range("z", "a", 0); got != nil {
		t.Fatalf("inverted range must be empty, got %v", got)
	}
	if got := tr.Range("e", "r", 0); got != nil {
		t.Fatalf("empty interval = %v", got)
	}
	if got := tr.Range("dgemm", "dgemm", 0); !reflect.DeepEqual(got, []keys.Key{"dgemm"}) {
		t.Fatalf("point range = %v", got)
	}
	if got := tr.Range("a", "z", 3); len(got) != 3 {
		t.Fatalf("limited range = %v", got)
	}
}

func TestRangeStructuralNodesExcluded(t *testing.T) {
	tr := New()
	insertAll(tr, "100", "101") // structural "10"
	got := tr.Range("0", "2", 0)
	want := []keys.Key{"100", "101"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Range = %v, want %v (structural 10 excluded)", got, want)
	}
}

func TestRemoveValue(t *testing.T) {
	tr := New()
	tr.Insert("101", "a")
	tr.Insert("101", "b")
	if !tr.Remove("101", "a") {
		t.Fatalf("remove existing value failed")
	}
	mustValidate(t, tr)
	if tr.NumKeys() != 1 {
		t.Fatalf("key must survive while data remains")
	}
	if tr.Remove("101", "a") {
		t.Fatalf("removing twice must fail")
	}
	if tr.Remove("999", "a") {
		t.Fatalf("removing from absent key must fail")
	}
	if !tr.Remove("101", "b") {
		t.Fatalf("remove last value failed")
	}
	mustValidate(t, tr)
	if tr.Len() != 0 || tr.Root() != nil {
		t.Fatalf("tree must be empty after last removal")
	}
}

func TestRemoveCompactsStructuralParent(t *testing.T) {
	tr := New()
	insertAll(tr, "100", "101") // structural root 10
	if !tr.RemoveKey("101") {
		t.Fatalf("RemoveKey failed")
	}
	mustValidate(t, tr)
	if tr.Root().Label != keys.Key("100") || tr.Len() != 1 {
		t.Fatalf("structural parent must be spliced, got root %q len %d",
			tr.Root().Label, tr.Len())
	}
}

func TestRemoveInteriorKeyKeepsStructure(t *testing.T) {
	tr := New()
	insertAll(tr, "abc", "abcx", "abcy")
	if !tr.RemoveKey("abc") {
		t.Fatalf("RemoveKey failed")
	}
	mustValidate(t, tr)
	// abc still needed as PGCP of abcx/abcy, now structural.
	n, ok := tr.Lookup("abc")
	if !ok || n.HasData() {
		t.Fatalf("abc must remain as structural node")
	}
}

func TestRemoveKeyAbsent(t *testing.T) {
	tr := New()
	insertAll(tr, "abc")
	if tr.RemoveKey("ab") {
		t.Fatalf("removing absent key must fail")
	}
}

func TestRemoveSplicesChainAboveRoot(t *testing.T) {
	tr := New()
	insertAll(tr, "a", "ab", "abc")
	if !tr.RemoveKey("a") {
		t.Fatalf("RemoveKey(a) failed")
	}
	mustValidate(t, tr)
	if tr.Root().Label != keys.Key("ab") {
		t.Fatalf("root should splice to ab, got %q", tr.Root().Label)
	}
}

func TestDepth(t *testing.T) {
	tr := New()
	if tr.Depth() != -1 {
		t.Fatalf("empty depth = %d", tr.Depth())
	}
	insertAll(tr, "a")
	if tr.Depth() != 0 {
		t.Fatalf("single-node depth = %d", tr.Depth())
	}
	insertAll(tr, "ab", "abc", "b")
	mustValidate(t, tr)
	// ε -> a -> ab -> abc
	if tr.Depth() != 3 {
		t.Fatalf("depth = %d, want 3\n%s", tr.Depth(), tr)
	}
}

func TestClone(t *testing.T) {
	tr := New()
	insertAll(tr, "100", "101", "0")
	cp := tr.Clone()
	mustValidate(t, cp)
	if !reflect.DeepEqual(tr.Labels(), cp.Labels()) {
		t.Fatalf("clone labels differ")
	}
	cp.InsertKey("111")
	if tr.Len() == cp.Len() {
		t.Fatalf("mutating clone must not affect original")
	}
}

func TestStringRendering(t *testing.T) {
	tr := New()
	if tr.String() != "(empty)" {
		t.Fatalf("empty rendering = %q", tr.String())
	}
	insertAll(tr, "100", "101")
	s := tr.String()
	if s == "" || s[0] != '1' {
		t.Fatalf("unexpected rendering:\n%s", s)
	}
	tr2 := New()
	insertAll(tr2, "0", "1")
	if tr2.String()[0:2] != "ε"[0:2] {
		t.Fatalf("ε root must render as ε:\n%s", tr2.String())
	}
}

func TestWalkOrder(t *testing.T) {
	tr := New()
	insertAll(tr, "ba", "bb", "aa", "ab")
	var seen []keys.Key
	tr.Walk(func(n *Node) { seen = append(seen, n.Label) })
	// Preorder with sorted children: ε, a, aa, ab, b, ba, bb
	want := []keys.Key{"", "a", "aa", "ab", "b", "ba", "bb"}
	if !reflect.DeepEqual(seen, want) {
		t.Fatalf("walk order = %v, want %v", seen, want)
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	tr := New()
	insertAll(tr, "100", "101")
	// Corrupt: make a child claim the wrong parent.
	n, _ := tr.Lookup("101")
	n.Parent = n
	if err := tr.Validate(); err == nil {
		t.Fatalf("Validate must detect corrupted parent pointer")
	}
}

func TestValidateDetectsBadSize(t *testing.T) {
	tr := New()
	insertAll(tr, "100", "101")
	tr.size = 99
	if err := tr.Validate(); err == nil {
		t.Fatalf("Validate must detect size mismatch")
	}
}

// --- property-based tests --------------------------------------------------

func randomKeys(r *rand.Rand, n, maxLen int, alpha string) []keys.Key {
	out := make([]keys.Key, n)
	for i := range out {
		l := 1 + r.Intn(maxLen)
		b := make([]byte, l)
		for j := range b {
			b[j] = alpha[r.Intn(len(alpha))]
		}
		out[i] = keys.Key(b)
	}
	return out
}

func TestPropInsertMaintainsInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		tr := New()
		ks := randomKeys(r, 40, 8, "01")
		for _, k := range ks {
			tr.InsertKey(k)
			if err := tr.Validate(); err != nil {
				t.Fatalf("trial %d after insert %q: %v\n%s", trial, k, err, tr)
			}
		}
		// All inserted keys must be retrievable.
		for _, k := range ks {
			n, ok := tr.Lookup(k)
			if !ok || !n.HasData() {
				t.Fatalf("trial %d: key %q lost", trial, k)
			}
		}
	}
}

func TestPropInsertOrderIndependent(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		ks := randomKeys(r, 25, 6, "012")
		t1, t2 := New(), New()
		for _, k := range ks {
			t1.InsertKey(k)
		}
		perm := r.Perm(len(ks))
		for _, i := range perm {
			t2.InsertKey(ks[i])
		}
		if !reflect.DeepEqual(t1.Labels(), t2.Labels()) {
			t.Fatalf("trial %d: insertion order changed structure:\n%s\nvs\n%s",
				trial, t1, t2)
		}
	}
}

func TestPropRemoveRestoresInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		tr := New()
		ks := randomKeys(r, 30, 7, "01")
		uniq := map[keys.Key]bool{}
		for _, k := range ks {
			tr.InsertKey(k)
			uniq[k] = true
		}
		var list []keys.Key
		for k := range uniq {
			list = append(list, k)
		}
		keys.SortKeys(list)
		r.Shuffle(len(list), func(i, j int) { list[i], list[j] = list[j], list[i] })
		for _, k := range list {
			if !tr.RemoveKey(k) {
				t.Fatalf("trial %d: RemoveKey(%q) failed", trial, k)
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("trial %d after remove %q: %v\n%s", trial, k, err, tr)
			}
			if n, ok := tr.Lookup(k); ok && n.HasData() {
				t.Fatalf("trial %d: %q still holds data", trial, k)
			}
		}
		if tr.Len() != 0 {
			t.Fatalf("trial %d: %d nodes left after removing all", trial, tr.Len())
		}
	}
}

func TestPropRangeMatchesSort(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ks := randomKeys(r, 30, 6, "01")
		tr := New()
		set := map[keys.Key]bool{}
		for _, k := range ks {
			tr.InsertKey(k)
			set[k] = true
		}
		lo := keys.Key("0")
		hi := keys.Key("1" + string(randomKeys(r, 1, 4, "01")[0]))
		if hi < lo {
			lo, hi = hi, lo
		}
		got := tr.Range(lo, hi, 0)
		var want []keys.Key
		for k := range set {
			if lo <= k && k <= hi {
				want = append(want, k)
			}
		}
		keys.SortKeys(want)
		if len(want) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropCompleteMatchesFilter(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ks := randomKeys(r, 30, 6, "01")
		tr := New()
		set := map[keys.Key]bool{}
		for _, k := range ks {
			tr.InsertKey(k)
			set[k] = true
		}
		prefix := randomKeys(r, 1, 3, "01")[0]
		got := tr.Complete(prefix, 0)
		var want []keys.Key
		for k := range set {
			if keys.IsPrefix(prefix, k) {
				want = append(want, k)
			}
		}
		keys.SortKeys(want)
		if len(want) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropStructuralNodeCountBound(t *testing.T) {
	// A PGCP tree over n keys has at most n-1 structural nodes
	// (each split creates at most one), so at most 2n-1 nodes total.
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		tr := New()
		ks := randomKeys(r, 50, 10, "01")
		uniq := map[keys.Key]bool{}
		for _, k := range ks {
			tr.InsertKey(k)
			uniq[k] = true
		}
		n := len(uniq)
		if tr.Len() > 2*n-1 {
			t.Fatalf("trial %d: %d nodes for %d keys exceeds 2n-1", trial, tr.Len(), n)
		}
	}
}

func TestPropDepthBoundedByMaxKeyLength(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	for trial := 0; trial < 30; trial++ {
		tr := New()
		maxLen := 8
		for _, k := range randomKeys(r, 60, maxLen, "01") {
			tr.InsertKey(k)
		}
		// Every edge strictly extends the label, so depth <= max label
		// length (+1 for a possible ε root).
		if d := tr.Depth(); d > maxLen+1 {
			t.Fatalf("trial %d: depth %d exceeds bound %d", trial, d, maxLen+1)
		}
	}
}

func TestKeysSorted(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	tr := New()
	for _, k := range randomKeys(r, 100, 8, "abc") {
		tr.InsertKey(k)
	}
	ks := tr.Keys()
	if !sort.SliceIsSorted(ks, func(i, j int) bool { return ks[i] < ks[j] }) {
		t.Fatalf("Keys() not sorted")
	}
}
