package trie

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"dlpt/internal/keys"
)

func TestExportImportRoundTrip(t *testing.T) {
	tr := New()
	tr.Insert("dgemm", "host-a")
	tr.Insert("dgemm", "host-b")
	tr.Insert("dgemv", "host-a")
	tr.Insert("saxpy", "host-c")
	var b strings.Builder
	if err := tr.Export(&b); err != nil {
		t.Fatal(err)
	}
	got, err := Import(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr.Labels(), got.Labels()) {
		t.Fatalf("labels differ: %v vs %v", tr.Labels(), got.Labels())
	}
	n, ok := got.Lookup("dgemm")
	if !ok || len(n.Data) != 2 {
		t.Fatalf("dgemm data lost: %v", n)
	}
}

func TestExportDeterministic(t *testing.T) {
	tr := New()
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 60; i++ {
		tr.InsertKey(keys.Key(randomKeys(r, 1, 6, "abc")[0]))
	}
	var a, b strings.Builder
	if err := tr.Export(&a); err != nil {
		t.Fatal(err)
	}
	if err := tr.Export(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("export not deterministic")
	}
}

func TestExportOmitsStructuralNodes(t *testing.T) {
	tr := New()
	tr.InsertKey("100")
	tr.InsertKey("101") // structural "10" appears
	var b strings.Builder
	if err := tr.Export(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "\"10\"") {
		t.Fatalf("structural node serialized:\n%s", b.String())
	}
	got, err := Import(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	// The structural node is rebuilt on import.
	if _, ok := got.Lookup("10"); !ok {
		t.Fatalf("structural node not rebuilt")
	}
}

func TestImportBadJSON(t *testing.T) {
	if _, err := Import(strings.NewReader("{nope")); err == nil {
		t.Fatalf("invalid JSON must fail")
	}
}

func TestImportEmptyCatalogue(t *testing.T) {
	got, err := Import(strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("empty catalogue tree has %d nodes", got.Len())
	}
}

func TestImportKeyWithoutValues(t *testing.T) {
	got, err := Import(strings.NewReader(`{"dgemm": []}`))
	if err != nil {
		t.Fatal(err)
	}
	n, ok := got.Lookup("dgemm")
	if !ok || !n.HasData() {
		t.Fatalf("valueless key must register itself: %v", n)
	}
}

func TestRoundTripLargeRandom(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	tr := New()
	for _, k := range randomKeys(r, 300, 10, "01") {
		tr.InsertKey(k)
	}
	var b strings.Builder
	if err := tr.Export(&b); err != nil {
		t.Fatal(err)
	}
	got, err := Import(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr.Keys(), got.Keys()) {
		t.Fatalf("key sets differ after round trip")
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}
