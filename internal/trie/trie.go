// Package trie implements the Proper Greatest Common Prefix (PGCP)
// tree of the DLPT (Definition 1 of RR-6557): a labelled rooted tree
// in which the label of each node is the proper greatest common
// prefix of the labels of every pair of its children.
//
// This is the logical, centralized reference implementation. It is
// used three ways: as the query engine behind the public service
// registry, as the ground truth against which the distributed overlay
// of internal/core is differentially tested, and as the container the
// overlay embeds per peer.
package trie

import (
	"fmt"
	"sort"

	"dlpt/internal/keys"
)

// Node is a vertex of the PGCP tree. A node whose Data set is
// non-empty stores services registered under exactly its label;
// a node with empty Data exists only to preserve the prefix
// structure (the "non-filled" nodes of the paper's Figure 1).
type Node struct {
	Label    keys.Key
	Parent   *Node
	children map[keys.Key]*Node
	Data     map[string]struct{}
}

// NewNode returns a detached node with the given label.
func NewNode(label keys.Key) *Node {
	return &Node{
		Label:    label,
		children: make(map[keys.Key]*Node),
		Data:     make(map[string]struct{}),
	}
}

// HasData reports whether any service is registered at this node.
func (n *Node) HasData() bool { return len(n.Data) > 0 }

// NumChildren returns the number of children.
func (n *Node) NumChildren() int { return len(n.children) }

// Children returns the children sorted by label.
func (n *Node) Children() []*Node {
	out := make([]*Node, 0, len(n.children))
	for _, c := range n.children {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}

// Child returns the child with the given label, if any.
func (n *Node) Child(label keys.Key) (*Node, bool) {
	c, ok := n.children[label]
	return c, ok
}

// BestChild returns the child sharing the longest common prefix with
// k, provided that prefix is strictly longer than n's own label
// (i.e. the routing rule of Algorithm 3 line 3.05). It returns nil
// when no child improves on n.
func (n *Node) BestChild(k keys.Key) *Node {
	var best *Node
	bestLen := len(keys.GCP(n.Label, k))
	for _, c := range n.children {
		if l := len(keys.GCP(c.Label, k)); l > bestLen {
			best, bestLen = c, l
		}
	}
	return best
}

func (n *Node) addChild(c *Node) {
	c.Parent = n
	n.children[c.Label] = c
}

func (n *Node) removeChild(label keys.Key) {
	delete(n.children, label)
}

// Tree is a PGCP tree rooted, once non-empty, at the node labelled by
// the greatest common prefix of all inserted keys (often ε).
type Tree struct {
	root  *Node
	size  int // number of nodes
	nkeys int // number of distinct keys with data
}

// New returns an empty tree.
func New() *Tree { return &Tree{} }

// Root returns the root node (nil when the tree is empty).
func (t *Tree) Root() *Node { return t.root }

// Len returns the number of nodes in the tree.
func (t *Tree) Len() int { return t.size }

// NumKeys returns the number of distinct keys holding data.
func (t *Tree) NumKeys() int { return t.nkeys }

// Insert registers value under key k, creating at most two nodes (the
// key's node and, when k diverges from an existing sibling, their
// common PGCP parent) exactly as Algorithm 3 of the paper does. It
// returns the node storing k.
func (t *Tree) Insert(k keys.Key, value string) *Node {
	n := t.insertNode(k)
	if !n.HasData() {
		t.nkeys++
	}
	n.Data[value] = struct{}{}
	return n
}

// InsertKey registers k with the key itself as value (the paper's
// convention "we use the key of a data to refer to both the key and
// the value associated with").
func (t *Tree) InsertKey(k keys.Key) *Node { return t.Insert(k, string(k)) }

// insertNode creates (or finds) the node labelled k.
func (t *Tree) insertNode(k keys.Key) *Node {
	if t.root == nil {
		t.root = NewNode(k)
		t.size = 1
		return t.root
	}
	p := t.root
	for {
		if p.Label == k {
			return p
		}
		if keys.IsProperPrefix(p.Label, k) {
			// Sought node is below p.
			if q := p.BestChild(k); q != nil {
				if keys.IsPrefix(q.Label, k) {
					p = q
					continue
				}
				// k diverges inside q's label: split with a common
				// parent labelled GCP(q,k).
				return t.splitChild(p, q, k)
			}
			// No child shares more than p's label: new leaf child.
			c := NewNode(k)
			p.addChild(c)
			t.size++
			return c
		}
		if keys.IsProperPrefix(k, p.Label) {
			// Sought node is above p (p must be the root here since we
			// only descend into prefixes of k).
			return t.insertAboveRoot(k)
		}
		// p and k are siblings under a new common parent; only
		// possible at the root.
		return t.insertSiblingOfRoot(k)
	}
}

// splitChild inserts k under p when k shares a longer prefix with
// child q than with p but q's label is not a prefix of k. A common
// parent g = GCP(q,k) is created; when g == k the key node itself is
// the new parent.
func (t *Tree) splitChild(p, q *Node, k keys.Key) *Node {
	g := keys.GCP(q.Label, k)
	p.removeChild(q.Label)
	if g == k {
		// k is a proper prefix of q: k becomes q's parent.
		kn := NewNode(k)
		p.addChild(kn)
		kn.addChild(q)
		t.size++
		return kn
	}
	gn := NewNode(g)
	p.addChild(gn)
	gn.addChild(q)
	kn := NewNode(k)
	gn.addChild(kn)
	t.size += 2
	return kn
}

// insertAboveRoot handles k being a proper prefix of the current root
// label: k becomes the new root.
func (t *Tree) insertAboveRoot(k keys.Key) *Node {
	kn := NewNode(k)
	kn.addChild(t.root)
	t.root = kn
	t.size++
	return kn
}

// insertSiblingOfRoot handles k and the root label diverging: they
// become siblings under a new root labelled by their GCP (when that
// GCP equals k, k itself is the new root).
func (t *Tree) insertSiblingOfRoot(k keys.Key) *Node {
	g := keys.GCP(t.root.Label, k)
	if g == k {
		return t.insertAboveRoot(k)
	}
	gn := NewNode(g)
	gn.addChild(t.root)
	kn := NewNode(k)
	gn.addChild(kn)
	t.root = gn
	t.size += 2
	return kn
}

// Lookup returns the node labelled exactly k, if present.
func (t *Tree) Lookup(k keys.Key) (*Node, bool) {
	n := t.root
	for n != nil {
		if n.Label == k {
			return n, true
		}
		if !keys.IsProperPrefix(n.Label, k) {
			return nil, false
		}
		q := n.BestChild(k)
		if q == nil || !keys.IsPrefix(q.Label, k) {
			return nil, false
		}
		n = q
	}
	return nil, false
}

// LongestPrefixNode returns the deepest node whose label is a prefix
// of k (the entry point of downward routing). Nil when even the root
// label does not prefix k.
func (t *Tree) LongestPrefixNode(k keys.Key) *Node {
	if t.root == nil || !keys.IsPrefix(t.root.Label, k) {
		return nil
	}
	n := t.root
	for {
		q := n.BestChild(k)
		if q == nil || !keys.IsPrefix(q.Label, k) {
			return n
		}
		n = q
	}
}

// Complete returns up to limit keys holding data that extend the
// given prefix, in lexicographic order (the paper's "automatic
// completion of partial search strings"). limit <= 0 means no limit.
func (t *Tree) Complete(prefix keys.Key, limit int) []keys.Key {
	if t.root == nil {
		return nil
	}
	var out []keys.Key
	var walk func(n *Node) bool
	walk = func(n *Node) bool {
		// A subtree can contain extensions of prefix only when its
		// root label is comparable with prefix by the prefix order.
		if !keys.IsPrefix(prefix, n.Label) && !keys.IsPrefix(n.Label, prefix) {
			return true
		}
		if n.HasData() && keys.IsPrefix(prefix, n.Label) {
			out = append(out, n.Label)
			if limit > 0 && len(out) >= limit {
				return false
			}
		}
		for _, c := range n.Children() {
			if !walk(c) {
				return false
			}
		}
		return true
	}
	walk(t.root)
	keys.SortKeys(out)
	return out
}

// Range returns up to limit data-holding keys in the lexicographic
// interval [lo, hi], in order (the paper's range queries). limit <= 0
// means no limit.
func (t *Tree) Range(lo, hi keys.Key, limit int) []keys.Key {
	if t.root == nil || hi < lo {
		return nil
	}
	var out []keys.Key
	var walk func(n *Node) bool
	walk = func(n *Node) bool {
		// Prune subtrees entirely outside [lo,hi]: every label in the
		// subtree of n extends n.Label, and a prefix sorts before all
		// its extensions. When n.Label > hi the whole subtree is
		// above hi. When n.Label < lo and n.Label is not a prefix of
		// lo, all extensions keep the first digit differing from lo
		// and stay below lo.
		if n.Label > hi {
			return true
		}
		if n.Label < lo && !keys.IsProperPrefix(n.Label, lo) {
			return true
		}
		if n.HasData() && lo <= n.Label && n.Label <= hi {
			out = append(out, n.Label)
			if limit > 0 && len(out) >= limit {
				return false
			}
		}
		for _, c := range n.Children() {
			if !walk(c) {
				return false
			}
		}
		return true
	}
	walk(t.root)
	keys.SortKeys(out)
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// Remove deletes value from key k. When the key's data set becomes
// empty the node is removed and the PGCP structure re-compacted
// (childless dataless nodes pruned; single-child dataless interior
// nodes spliced out). It reports whether the value was present.
func (t *Tree) Remove(k keys.Key, value string) bool {
	n, ok := t.Lookup(k)
	if !ok {
		return false
	}
	if _, ok := n.Data[value]; !ok {
		return false
	}
	delete(n.Data, value)
	if !n.HasData() {
		t.nkeys--
		t.compact(n)
	}
	return true
}

// RemoveKey removes the key and all its data.
func (t *Tree) RemoveKey(k keys.Key) bool {
	n, ok := t.Lookup(k)
	if !ok {
		return false
	}
	if n.HasData() {
		t.nkeys--
	}
	n.Data = make(map[string]struct{})
	t.compact(n)
	return true
}

// compact prunes n upward while it is structurally redundant.
func (t *Tree) compact(n *Node) {
	for n != nil && !n.HasData() {
		switch n.NumChildren() {
		case 0:
			p := n.Parent
			if p == nil {
				t.root = nil
				t.size = 0
				return
			}
			p.removeChild(n.Label)
			t.size--
			n = p
		case 1:
			// Splice: the single child is adopted by the grandparent;
			// a dataless single-child node violates minimality (its
			// label is not the PGCP of a pair). The root may be
			// spliced too: the child becomes the new root.
			var only *Node
			for _, c := range n.children {
				only = c
			}
			p := n.Parent
			if p == nil {
				only.Parent = nil
				t.root = only
			} else {
				p.removeChild(n.Label)
				p.addChild(only)
			}
			t.size--
			return
		default:
			return
		}
	}
}

// Keys returns all data-holding keys in lexicographic order.
func (t *Tree) Keys() []keys.Key {
	var out []keys.Key
	t.Walk(func(n *Node) {
		if n.HasData() {
			out = append(out, n.Label)
		}
	})
	keys.SortKeys(out)
	return out
}

// Labels returns the labels of all nodes (data-holding or structural)
// in lexicographic order.
func (t *Tree) Labels() []keys.Key {
	var out []keys.Key
	t.Walk(func(n *Node) { out = append(out, n.Label) })
	keys.SortKeys(out)
	return out
}

// Walk visits every node in depth-first label order.
func (t *Tree) Walk(fn func(*Node)) {
	var rec func(n *Node)
	rec = func(n *Node) {
		fn(n)
		for _, c := range n.Children() {
			rec(c)
		}
	}
	if t.root != nil {
		rec(t.root)
	}
}

// Depth returns the number of edges on the longest root-to-leaf path
// (0 for a single node, -1 for an empty tree).
func (t *Tree) Depth() int {
	if t.root == nil {
		return -1
	}
	var rec func(n *Node) int
	rec = func(n *Node) int {
		d := 0
		for _, c := range n.children {
			if cd := rec(c) + 1; cd > d {
				d = cd
			}
		}
		return d
	}
	return rec(t.root)
}

// Validate checks the PGCP invariants of Definition 1 plus structural
// sanity, returning the first violation found:
//
//  1. every child label has its parent's label as a proper prefix;
//  2. for any two children of a node, their GCP equals the node's
//     label (equivalently the children's next digits after the label
//     are pairwise distinct);
//  3. a dataless non-root node has at least two children (minimality:
//     structural nodes exist only as PGCP of a pair);
//  4. parent/child pointers are mutually consistent and labels are
//     unique.
func (t *Tree) Validate() error {
	if t.root == nil {
		if t.size != 0 || t.nkeys != 0 {
			return fmt.Errorf("trie: empty tree with size=%d nkeys=%d", t.size, t.nkeys)
		}
		return nil
	}
	if t.root.Parent != nil {
		return fmt.Errorf("trie: root %q has a parent", t.root.Label)
	}
	seen := make(map[keys.Key]bool)
	count, dataCount := 0, 0
	var rec func(n *Node) error
	rec = func(n *Node) error {
		count++
		if n.HasData() {
			dataCount++
		}
		if seen[n.Label] {
			return fmt.Errorf("trie: duplicate label %q", n.Label)
		}
		seen[n.Label] = true
		if !n.HasData() && n != t.root && n.NumChildren() < 2 {
			return fmt.Errorf("trie: dataless node %q has %d children", n.Label, n.NumChildren())
		}
		cs := n.Children()
		for i, c := range cs {
			if c.Parent != n {
				return fmt.Errorf("trie: child %q of %q has wrong parent", c.Label, n.Label)
			}
			if mapped, ok := n.Child(c.Label); !ok || mapped != c {
				return fmt.Errorf("trie: child map of %q inconsistent for %q", n.Label, c.Label)
			}
			if !keys.IsProperPrefix(n.Label, c.Label) {
				return fmt.Errorf("trie: %q is not a proper prefix of child %q", n.Label, c.Label)
			}
			for _, d := range cs[i+1:] {
				if g := keys.GCP(c.Label, d.Label); g != n.Label {
					return fmt.Errorf("trie: GCP(%q,%q)=%q differs from parent label %q",
						c.Label, d.Label, g, n.Label)
				}
			}
		}
		for _, c := range cs {
			if err := rec(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(t.root); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("trie: size=%d but %d nodes reachable", t.size, count)
	}
	if dataCount != t.nkeys {
		return fmt.Errorf("trie: nkeys=%d but %d data nodes reachable", t.nkeys, dataCount)
	}
	return nil
}

// Clone returns a deep copy of the tree.
func (t *Tree) Clone() *Tree {
	nt := New()
	if t.root == nil {
		return nt
	}
	var rec func(n *Node) *Node
	rec = func(n *Node) *Node {
		m := NewNode(n.Label)
		for v := range n.Data {
			m.Data[v] = struct{}{}
		}
		for _, c := range n.Children() {
			m.addChild(rec(c))
		}
		return m
	}
	nt.root = rec(t.root)
	nt.size = t.size
	nt.nkeys = t.nkeys
	return nt
}

// String renders the tree as an indented outline, for debugging and
// examples.
func (t *Tree) String() string {
	if t.root == nil {
		return "(empty)"
	}
	var b []byte
	var rec func(n *Node, depth int)
	rec = func(n *Node, depth int) {
		for i := 0; i < depth; i++ {
			b = append(b, ' ', ' ')
		}
		label := string(n.Label)
		if label == "" {
			label = "ε"
		}
		b = append(b, label...)
		if n.HasData() {
			b = append(b, fmt.Sprintf(" [%d]", len(n.Data))...)
		}
		b = append(b, '\n')
		for _, c := range n.Children() {
			rec(c, depth+1)
		}
	}
	rec(t.root, 0)
	return string(b)
}
