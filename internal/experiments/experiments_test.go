package experiments

import (
	"strings"
	"testing"
)

func TestFigureSpecs(t *testing.T) {
	specs := []Spec{
		Figure4(true), Figure5(true), Figure6(true), Figure7(true),
		Figure8(true), Figure9(true),
	}
	ids := map[string]bool{}
	for _, s := range specs {
		if s.ID == "" || s.Title == "" {
			t.Fatalf("spec missing metadata: %+v", s)
		}
		if ids[s.ID] {
			t.Fatalf("duplicate spec id %q", s.ID)
		}
		ids[s.ID] = true
		if s.Base.TimeUnits < 10 {
			t.Fatalf("%s: too few units %d", s.ID, s.Base.TimeUnits)
		}
	}
	// Paper-scale parameters.
	full := Figure4(false)
	if full.Base.NumPeers != 100 || full.Base.NumKeys != 1000 || full.Base.Runs != 30 {
		t.Fatalf("figure 4 full scale wrong: %+v", full.Base)
	}
	if f8 := Figure8(false); f8.Base.Runs != 50 || f8.Base.TimeUnits != 160 {
		t.Fatalf("figure 8 full scale wrong: runs=%d units=%d", f8.Base.Runs, f8.Base.TimeUnits)
	}
	if f9 := Figure9(false); f9.Base.Runs != 100 {
		t.Fatalf("figure 9 full scale wrong: runs=%d", f9.Base.Runs)
	}
}

func TestLoadLevelsMatchPaper(t *testing.T) {
	want := []float64{0.05, 0.10, 0.16, 0.24, 0.40, 0.80}
	if len(Table1Loads) != len(want) {
		t.Fatalf("Table1Loads = %v", Table1Loads)
	}
	for i, l := range want {
		if Table1Loads[i] != l {
			t.Fatalf("Table1Loads[%d] = %v, want %v", i, Table1Loads[i], l)
		}
	}
}

func TestRunSpecFigure4Quick(t *testing.T) {
	ds, err := RunSpec(Figure4(true))
	if err != nil {
		t.Fatal(err)
	}
	// Three curves, each with a stddev column.
	if len(ds.Columns) != 6 {
		t.Fatalf("columns = %d", len(ds.Columns))
	}
	names := map[string]bool{}
	for _, c := range ds.Columns {
		names[c.Name] = true
	}
	for _, want := range []string{"MLT", "KC", "NoLB", "MLT_sd"} {
		if !names[want] {
			t.Fatalf("missing column %q", want)
		}
	}
	// Satisfaction percentages are sane after the growth phase.
	for _, c := range ds.Columns {
		if strings.HasSuffix(c.Name, "_sd") {
			continue
		}
		for i, v := range c.Values {
			if v < 0 || v > 100 {
				t.Fatalf("%s[%d] = %v out of range", c.Name, i, v)
			}
		}
		last := c.Values[len(c.Values)-1]
		if last == 0 {
			t.Fatalf("%s ends at 0%% satisfaction", c.Name)
		}
	}
	var b strings.Builder
	if err := WriteDataset(ds, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Figure 4") {
		t.Fatalf("dataset output missing title")
	}
}

// TestFigure5ShapeMLTWins checks the qualitative claim of Figures 4-5:
// on a stable network MLT outperforms no load balancing, most visibly
// under overload.
func TestFigure5ShapeMLTWins(t *testing.T) {
	spec := Figure5(true)
	spec.Base.Runs = 3
	ds, err := RunSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	col := map[string][]float64{}
	for _, c := range ds.Columns {
		col[c.Name] = c.Values
	}
	steady := func(vs []float64) float64 {
		sum := 0.0
		n := 0
		for i := spec.Base.GrowUnits; i < len(vs); i++ {
			sum += vs[i]
			n++
		}
		return sum / float64(n)
	}
	mlt, nolb := steady(col["MLT"]), steady(col["NoLB"])
	t.Logf("fig5 quick steady-state: MLT=%.1f%% NoLB=%.1f%%", mlt, nolb)
	if mlt <= nolb {
		t.Fatalf("MLT (%.2f) must beat NoLB (%.2f) under overload", mlt, nolb)
	}
}

func TestRunFigure9Quick(t *testing.T) {
	ds, err := RunFigure9(true)
	if err != nil {
		t.Fatal(err)
	}
	col := map[string][]float64{}
	for _, c := range ds.Columns {
		col[c.Name] = c.Values
	}
	for _, name := range []string{"logical_hops", "physical_random_mapping", "physical_lexico_MLT"} {
		if col[name] == nil {
			t.Fatalf("missing column %q", name)
		}
	}
	// Steady-state shape: physical hops under the lexicographic
	// mapping are below the random mapping, which is itself bounded
	// by the logical hop count.
	steady := func(vs []float64) float64 {
		sum, n := 0.0, 0
		for i := len(vs) / 2; i < len(vs); i++ {
			sum += vs[i]
			n++
		}
		return sum / float64(n)
	}
	logical := steady(col["logical_hops"])
	random := steady(col["physical_random_mapping"])
	lexico := steady(col["physical_lexico_MLT"])
	t.Logf("fig9 quick: logical=%.2f random=%.2f lexico+MLT=%.2f", logical, random, lexico)
	if lexico >= random {
		t.Fatalf("lexicographic mapping must cut physical hops: %.2f vs %.2f", lexico, random)
	}
	if random > logical+0.5 {
		t.Fatalf("physical hops cannot exceed logical hops: %.2f vs %.2f", random, logical)
	}
	if logical <= 0 {
		t.Fatalf("no logical hops measured")
	}
}

func TestTable1Quick(t *testing.T) {
	tb, err := Table1(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 { // quick scale: two load levels
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	s := tb.String()
	if !strings.Contains(s, "Table 1") || !strings.Contains(s, "%") {
		t.Fatalf("bad table:\n%s", s)
	}
}

func TestTable2Quick(t *testing.T) {
	tb, err := Table2(true)
	if err != nil {
		t.Fatal(err)
	}
	s := tb.String()
	for _, want := range []string{"P-Grid", "PHT", "DLPT", "O(D)", "O(log |Pi|)", "O(D log P)"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table 2 missing %q:\n%s", want, s)
		}
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestAblationObjectiveQuick(t *testing.T) {
	tb, err := AblationObjective(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	s := tb.String()
	for _, want := range []string{"MLT", "EqualLoad", "Directory", "NoLB", "Gini"} {
		if !strings.Contains(s, want) {
			t.Fatalf("objective ablation missing %q:\n%s", want, s)
		}
	}
}

func TestAblationMaintenanceQuick(t *testing.T) {
	tb, err := AblationMaintenance(true)
	if err != nil {
		t.Fatal(err)
	}
	s := tb.String()
	if !strings.Contains(s, "Peer join") || !strings.Contains(s, "Key insert") {
		t.Fatalf("ablation rows missing:\n%s", s)
	}
}
