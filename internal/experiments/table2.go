package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"dlpt/internal/core"
	"dlpt/internal/dht"
	"dlpt/internal/keys"
	"dlpt/internal/metrics"
	"dlpt/internal/pgrid"
	"dlpt/internal/pht"
	"dlpt/internal/sim"
	"dlpt/internal/workload"
)

// table2Scale holds the population sizes of the comparison.
type table2Scale struct {
	peers, nkeys, lookups int
}

func scaleFor(quick bool) table2Scale {
	if quick {
		return table2Scale{peers: 24, nkeys: 150, lookups: 150}
	}
	return table2Scale{peers: 128, nkeys: 1000, lookups: 1000}
}

// Table2 measures, on implementations of all three systems, the
// quantities the paper compares analytically: routing cost per query
// and local state per peer. D is the maximal identifier length, P the
// peer count, |Π| the number of P-Grid partitions, A the alphabet.
func Table2(quick bool) (*metrics.Table, error) {
	sc := scaleFor(quick)
	rng := rand.New(rand.NewSource(7))
	corpus := workload.GridCorpus(sc.nkeys)
	maxLen := 0
	for _, k := range corpus {
		if k.Len() > maxLen {
			maxLen = k.Len()
		}
	}

	// --- DLPT ---------------------------------------------------------
	net := core.NewNetwork(keys.LowerAlnum, core.PlacementLexicographic)
	for i := 0; i < sc.peers; i++ {
		id := keys.LowerAlnum.RandomKey(rng, 12, 12)
		if err := net.JoinPeer(id, 1<<30, rng); err != nil {
			return nil, err
		}
	}
	for _, k := range corpus {
		if err := net.InsertKey(k, rng); err != nil {
			return nil, err
		}
	}
	dlptHops := 0.0
	for i := 0; i < sc.lookups; i++ {
		res := net.DiscoverRandom(corpus[rng.Intn(len(corpus))], false, rng)
		if !res.Satisfied {
			return nil, fmt.Errorf("table2: DLPT lost key")
		}
		dlptHops += float64(res.LogicalHops)
	}
	dlptHops /= float64(sc.lookups)
	// Local state: per peer, hosted nodes' child+father references.
	dlptState := 0.0
	for _, id := range net.PeerIDs() {
		p, _ := net.Peer(id)
		for _, n := range p.Nodes {
			dlptState += float64(len(n.Children) + 1)
		}
	}
	dlptState /= float64(net.NumPeers())

	// --- PHT over Chord -------------------------------------------------
	ring := dht.New()
	for i := 0; i < sc.peers; i++ {
		if _, err := ring.Join(fmt.Sprintf("pht-peer-%04d", i)); err != nil {
			return nil, err
		}
	}
	ph, err := pht.New(ring, 64, 8, rng)
	if err != nil {
		return nil, err
	}
	for _, k := range corpus {
		if err := ph.Insert(k); err != nil {
			return nil, err
		}
	}
	h0 := ph.Counters.RoutingHops
	for i := 0; i < sc.lookups; i++ {
		found, err := ph.Lookup(corpus[rng.Intn(len(corpus))])
		if err != nil || !found {
			return nil, fmt.Errorf("table2: PHT lost key: %v", err)
		}
	}
	phtHops := float64(ph.Counters.RoutingHops-h0) / float64(sc.lookups)
	// Local state: stored trie vertices + finger entries per node.
	phtState := 0.0
	for _, n := range ring.Nodes() {
		phtState += float64(len(n.Data)) + math.Log2(float64(sc.peers))
	}
	phtState /= float64(ring.Len())

	// --- P-Grid ----------------------------------------------------------
	var names []string
	for i := 0; i < sc.peers; i++ {
		names = append(names, fmt.Sprintf("pgrid-peer-%04d", i))
	}
	grid, err := pgrid.Build(pgrid.Config{D: 64, MaxKeysPerLeaf: 1 + sc.nkeys/sc.peers, RefsPerLevel: 2},
		names, corpus, rng)
	if err != nil {
		return nil, err
	}
	gridHops := 0.0
	for i := 0; i < sc.lookups; i++ {
		found, hops, err := grid.Lookup(corpus[rng.Intn(len(corpus))])
		if err != nil || !found {
			return nil, fmt.Errorf("table2: P-Grid lost key: %v", err)
		}
		gridHops += float64(hops)
	}
	gridHops /= float64(sc.lookups)
	gridState := grid.AvgRoutingState()

	tb := metrics.NewTable(
		fmt.Sprintf("Table 2: complexities of close trie-structured approaches "+
			"(P=%d, N=%d keys, D=%d, |Pi|=%d)",
			sc.peers, sc.nkeys, maxLen, grid.NumPartitions()),
		"Functionality", "P-Grid", "PHT", "DLPT")
	tb.AddRow("Tree routing (analytic)", "O(log |Pi|)", "O(D log P)", "O(D)")
	tb.AddRow("Tree routing (measured hops/query)",
		metrics.F2(gridHops), metrics.F2(phtHops), metrics.F2(dlptHops))
	tb.AddRow("Local state (analytic)", "O(log |Pi|)", "|N|/|P| |A|", "|N|/|P| |A|")
	tb.AddRow("Local state (measured refs/peer)",
		metrics.F2(gridState), metrics.F2(phtState), metrics.F2(dlptState))
	return tb, nil
}

// AblationObjective quantifies the value of MLT's throughput
// objective over capacity-blind item balancing (the DHT heuristics of
// Section 5 assume homogeneous peers): the same boundary-move
// machinery run with the |L_P - L_S|-minimising objective (EqualLoad)
// against MLT and no balancing, on the stable overload scenario with
// the paper's 4x capacity heterogeneity. Reported per strategy:
// steady-state satisfaction and the Gini coefficient of per-peer
// utilization.
func AblationObjective(quick bool) (*metrics.Table, error) {
	cfg := baseConfig(quick)
	cfg.LoadFraction = highLoad
	cfg.JoinFraction = stableChurn
	cfg.LeaveFraction = stableChurn
	tb := metrics.NewTable(
		"Ablation: MLT objective vs capacity-blind item balancing and "+
			"semi-centralized scheduling (overload, capacity ratio 4)",
		"Strategy", "Satisfied (steady state)", "Utilization Gini", "Moves/unit")
	for _, strategy := range []string{"MLT", "EqualLoad", "Directory", "NoLB"} {
		c := cfg
		c.Strategy = strategy
		res, err := sim.Run(c)
		if err != nil {
			return nil, fmt.Errorf("objective/%s: %w", strategy, err)
		}
		moves := 0.0
		for _, v := range res.LBMoves.Means() {
			moves += v
		}
		tb.AddRow(strategy,
			metrics.Pct(res.SteadyStateSatisfaction()),
			metrics.F2(res.LoadGini.OverallMean(c.GrowUnits, res.LoadGini.Len())),
			metrics.F2(moves/float64(c.TimeUnits)))
	}
	return tb, nil
}

// AblationMaintenance quantifies the paper's first contribution (the
// avoidance of the DHT): protocol messages per peer join and per key
// insert for the self-contained DLPT versus the DHT-backed designs
// (the hashed-mapping DLPT of [5] and PHT over Chord).
func AblationMaintenance(quick bool) (*metrics.Table, error) {
	sc := scaleFor(quick)
	nJoins := sc.peers / 2
	nInserts := sc.nkeys / 2
	corpus := workload.GridCorpus(sc.nkeys)

	type cost struct{ perJoin, perInsert float64 }
	measureDLPT := func(placement core.Placement) (cost, error) {
		rng := rand.New(rand.NewSource(11))
		net := core.NewNetwork(keys.LowerAlnum, placement)
		for i := 0; i < sc.peers; i++ {
			if err := net.JoinPeer(keys.LowerAlnum.RandomKey(rng, 12, 12), 1<<30, rng); err != nil {
				return cost{}, err
			}
		}
		for _, k := range corpus[:sc.nkeys/2] {
			if err := net.InsertKey(k, rng); err != nil {
				return cost{}, err
			}
		}
		before := net.Counters.MaintenanceMsgs
		for i := 0; i < nJoins; i++ {
			if err := net.JoinPeer(keys.LowerAlnum.RandomKey(rng, 12, 12), 1<<30, rng); err != nil {
				return cost{}, err
			}
		}
		joinCost := float64(net.Counters.MaintenanceMsgs-before) / float64(nJoins)
		before = net.Counters.MaintenanceMsgs
		for _, k := range corpus[sc.nkeys/2 : sc.nkeys/2+nInserts] {
			if err := net.InsertKey(k, rng); err != nil {
				return cost{}, err
			}
		}
		insertCost := float64(net.Counters.MaintenanceMsgs-before) / float64(nInserts)
		return cost{joinCost, insertCost}, nil
	}

	lex, err := measureDLPT(core.PlacementLexicographic)
	if err != nil {
		return nil, err
	}
	hsh, err := measureDLPT(core.PlacementHashed)
	if err != nil {
		return nil, err
	}

	// PHT over Chord: join cost = Chord join (lookup + finger repairs);
	// insert cost = PHT insert's DHT traffic.
	rng := rand.New(rand.NewSource(13))
	ring := dht.New()
	for i := 0; i < sc.peers; i++ {
		if _, err := ring.Join(fmt.Sprintf("peer-%04d", i)); err != nil {
			return nil, err
		}
	}
	ph, err := pht.New(ring, 64, 8, rng)
	if err != nil {
		return nil, err
	}
	for _, k := range corpus[:sc.nkeys/2] {
		if err := ph.Insert(k); err != nil {
			return nil, err
		}
	}
	before := ring.Counters.MaintenanceMsgs
	for i := 0; i < nJoins; i++ {
		if _, err := ring.Join(fmt.Sprintf("late-peer-%04d", i)); err != nil {
			return nil, err
		}
	}
	phtJoin := float64(ring.Counters.MaintenanceMsgs-before) / float64(nJoins)
	beforeHops := ph.Counters.RoutingHops
	for _, k := range corpus[sc.nkeys/2 : sc.nkeys/2+nInserts] {
		if err := ph.Insert(k); err != nil {
			return nil, err
		}
	}
	phtInsert := float64(ph.Counters.RoutingHops-beforeHops) / float64(nInserts)

	tb := metrics.NewTable(
		fmt.Sprintf("Ablation: maintenance cost (messages per operation, P=%d, N=%d)",
			sc.peers, sc.nkeys),
		"Operation", "DLPT self-contained", "DLPT over DHT [5]", "PHT over Chord")
	tb.AddRow("Peer join", metrics.F2(lex.perJoin), metrics.F2(hsh.perJoin), metrics.F2(phtJoin))
	tb.AddRow("Key insert", metrics.F2(lex.perInsert), metrics.F2(hsh.perInsert), metrics.F2(phtInsert))
	return tb, nil
}
