// Package experiments defines one runnable reproduction per table and
// figure of the paper's evaluation (RR-6557 Section 4 and 5), mapping
// each to the simulation engine with the paper's parameters. Every
// experiment exists in two scales: the paper scale (100 peers, 1000
// keys, 30-100 runs) and a quick scale for tests and benchmarks.
package experiments

import (
	"fmt"
	"io"

	"dlpt/internal/core"
	"dlpt/internal/metrics"
	"dlpt/internal/sim"
	"dlpt/internal/workload"
)

// Variant is one curve of a figure.
type Variant struct {
	Name      string
	Strategy  string
	Placement core.Placement
}

// Spec is a figure experiment: a base configuration and the variants
// (curves) run against it.
type Spec struct {
	ID       string
	Title    string
	Base     sim.Config
	Variants []Variant
}

// paperVariants are the three curves of Figures 4-8.
func paperVariants() []Variant {
	return []Variant{
		{Name: "MLT", Strategy: "MLT"},
		{Name: "KC", Strategy: "KC"},
		{Name: "NoLB", Strategy: "NoLB"},
	}
}

// baseConfig returns the shared Section 4 parameters at the requested
// scale.
func baseConfig(quick bool) sim.Config {
	cfg := sim.DefaultConfig()
	if quick {
		cfg.Runs = 2
		cfg.NumPeers = 24
		cfg.NumKeys = 150
		cfg.GrowUnits = 4
		cfg.TimeUnits = 16
	} else {
		cfg.Runs = 30
		cfg.NumPeers = 100
		cfg.NumKeys = 1000
		cfg.GrowUnits = 10
		cfg.TimeUnits = 50
	}
	return cfg
}

const (
	// lowLoad keeps demand well under the aggregate capacity; the
	// overload scenarios of Figures 5 and 7 send "a very high number
	// of requests, in order to stress the system" — 80% of the
	// aggregate capacity (the top of Table 1's load range), beyond
	// what the unbalanced system can serve.
	lowLoad  = 0.10
	highLoad = 0.80
	// The paper's "stable" network has joins/leaves "intentionally
	// low" (not zero — KC still acts at joins); the dynamic scenario
	// replaces ~10% of the peers per unit.
	stableChurn = 0.02
	churn       = 0.10
)

// Figure4 is the stable-network, low-load satisfaction comparison.
func Figure4(quick bool) Spec {
	cfg := baseConfig(quick)
	cfg.LoadFraction = lowLoad
	cfg.JoinFraction = stableChurn
	cfg.LeaveFraction = stableChurn
	return Spec{
		ID:       "fig4",
		Title:    "Figure 4: load balancing - stable network - no overload",
		Base:     cfg,
		Variants: paperVariants(),
	}
}

// Figure5 stresses the stable network with a very high request count.
func Figure5(quick bool) Spec {
	cfg := baseConfig(quick)
	cfg.LoadFraction = highLoad
	cfg.JoinFraction = stableChurn
	cfg.LeaveFraction = stableChurn
	return Spec{
		ID:       "fig5",
		Title:    "Figure 5: load balancing - stable network - overload",
		Base:     cfg,
		Variants: paperVariants(),
	}
}

// Figure6 is the dynamic-network (10% churn) low-load comparison.
func Figure6(quick bool) Spec {
	cfg := baseConfig(quick)
	cfg.LoadFraction = lowLoad
	cfg.JoinFraction = churn
	cfg.LeaveFraction = churn
	return Spec{
		ID:       "fig6",
		Title:    "Figure 6: comparing LB algorithms - dynamic network - no overload",
		Base:     cfg,
		Variants: paperVariants(),
	}
}

// Figure7 is the dynamic-network overload comparison.
func Figure7(quick bool) Spec {
	cfg := baseConfig(quick)
	cfg.LoadFraction = highLoad
	cfg.JoinFraction = churn
	cfg.LeaveFraction = churn
	return Spec{
		ID:       "fig7",
		Title:    "Figure 7: comparing LB algorithms - dynamic network - overload",
		Base:     cfg,
		Variants: paperVariants(),
	}
}

// Figure8 creates moving hot spots: uniform, then the S3L subtree
// (t in [40,80)), then the ScaLAPACK subtree (t in [80,120)), then
// uniform again, over 160 units on a dynamic network.
func Figure8(quick bool) Spec {
	cfg := baseConfig(quick)
	cfg.LoadFraction = 0.4
	cfg.JoinFraction = churn / 2
	cfg.LeaveFraction = churn / 2
	if quick {
		cfg.TimeUnits = 40
		cfg.Picker = &workload.HotSpot{Phases: []workload.Phase{
			{From: 10, To: 20, Prefix: "s3l", Bias: 0.9},
			{From: 20, To: 30, Prefix: "p", Bias: 0.9},
		}}
	} else {
		cfg.Runs = 50
		cfg.TimeUnits = 160
		cfg.Picker = workload.Figure8Schedule()
	}
	return Spec{
		ID:       "fig8",
		Title:    "Figure 8: load balancing - dynamic network - hot spots",
		Base:     cfg,
		Variants: paperVariants(),
	}
}

// Zipf measures satisfaction under skewed service popularity (the
// abstract's "changing popularity of the services requested by
// users"): requests follow a Zipf law over the key ranking instead of
// the uniform draw of Figures 4-7. An extension experiment; the paper
// evaluates popularity skew only through the Figure 8 hot spots.
func Zipf(quick bool) Spec {
	cfg := baseConfig(quick)
	cfg.LoadFraction = 0.4
	cfg.JoinFraction = stableChurn
	cfg.LeaveFraction = stableChurn
	cfg.Picker = workload.Zipf{S: 1.3}
	return Spec{
		ID:       "zipf",
		Title:    "Extension: load balancing under Zipf service popularity",
		Base:     cfg,
		Variants: paperVariants(),
	}
}

// RunSpec executes every variant of a figure and assembles the
// satisfaction time-series dataset (mean and stddev per curve).
func RunSpec(spec Spec) (*metrics.Dataset, error) {
	index := make([]float64, spec.Base.TimeUnits)
	for i := range index {
		index[i] = float64(i)
	}
	ds := metrics.NewDataset(spec.Title, "time", index)
	for _, v := range spec.Variants {
		cfg := spec.Base
		cfg.Strategy = v.Strategy
		cfg.Placement = v.Placement
		res, err := sim.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", spec.ID, v.Name, err)
		}
		if err := ds.AddColumn(v.Name, res.Satisfaction.Means()); err != nil {
			return nil, err
		}
		if err := ds.AddColumn(v.Name+"_sd", res.Satisfaction.StdDevs()); err != nil {
			return nil, err
		}
	}
	return ds, nil
}

// Figure9 measures the communication gain of the lexicographic
// mapping: average logical hops, physical hops under the random
// (hashed/DHT) mapping, and physical hops under the lexicographic
// mapping with MLT, on the Figure 8 hot-spot scenario.
func Figure9(quick bool) Spec {
	cfg := Figure8(quick).Base
	if !quick {
		cfg.Runs = 100
	}
	return Spec{
		ID:    "fig9",
		Title: "Figure 9: reduction of the communication by the lexicographic mapping",
		Base:  cfg,
		Variants: []Variant{
			{Name: "lexico+MLT", Strategy: "MLT", Placement: core.PlacementLexicographic},
			{Name: "random", Strategy: "NoLB", Placement: core.PlacementHashed},
		},
	}
}

// RunFigure9 runs the two placements and assembles the three curves
// the paper plots.
func RunFigure9(quick bool) (*metrics.Dataset, error) {
	spec := Figure9(quick)
	index := make([]float64, spec.Base.TimeUnits)
	for i := range index {
		index[i] = float64(i)
	}
	ds := metrics.NewDataset(spec.Title, "time", index)

	lex := spec.Base
	lex.Strategy = "MLT"
	lex.Placement = core.PlacementLexicographic
	lexRes, err := sim.Run(lex)
	if err != nil {
		return nil, err
	}
	rnd := spec.Base
	rnd.Strategy = "NoLB"
	rnd.Placement = core.PlacementHashed
	rndRes, err := sim.Run(rnd)
	if err != nil {
		return nil, err
	}
	if err := ds.AddColumn("logical_hops", lexRes.Logical.Means()); err != nil {
		return nil, err
	}
	if err := ds.AddColumn("physical_random_mapping", rndRes.Physical.Means()); err != nil {
		return nil, err
	}
	if err := ds.AddColumn("physical_lexico_MLT", lexRes.Physical.Means()); err != nil {
		return nil, err
	}
	return ds, nil
}

// Table1Loads are the request/capacity ratios of Table 1.
var Table1Loads = []float64{0.05, 0.10, 0.16, 0.24, 0.40, 0.80}

// Table1 reproduces the gain summary: the percentage improvement in
// satisfied requests of MLT and KC over no load balancing, on stable
// and dynamic networks, per load level.
func Table1(quick bool) (*metrics.Table, error) {
	loads := Table1Loads
	if quick {
		loads = []float64{0.10, 0.40}
	}
	tb := metrics.NewTable(
		"Table 1: summary of gains of KC and MLT heuristics",
		"Load", "Stable MLT", "Stable KC", "Dynamic MLT", "Dynamic KC")
	for _, load := range loads {
		row := []string{fmt.Sprintf("%.0f%%", load*100)}
		for _, dynamic := range []bool{false, true} {
			var satisfied [3]int // MLT, KC, NoLB
			for i, strategy := range []string{"MLT", "KC", "NoLB"} {
				cfg := baseConfig(quick)
				if quick {
					cfg.Runs = 2
				} else {
					cfg.Runs = 30
				}
				cfg.LoadFraction = load
				cfg.Strategy = strategy
				if dynamic {
					cfg.JoinFraction = churn
					cfg.LeaveFraction = churn
				} else {
					cfg.JoinFraction = stableChurn
					cfg.LeaveFraction = stableChurn
				}
				res, err := sim.Run(cfg)
				if err != nil {
					return nil, fmt.Errorf("table1 load=%.2f %s: %w", load, strategy, err)
				}
				satisfied[i] = res.TotalSatisfied
			}
			base := satisfied[2]
			if base == 0 {
				base = 1
			}
			row = append(row,
				metrics.Pct(100*float64(satisfied[0]-satisfied[2])/float64(base)),
				metrics.Pct(100*float64(satisfied[1]-satisfied[2])/float64(base)))
		}
		// Reorder: stable MLT, stable KC, dynamic MLT, dynamic KC.
		tb.AddRow(row...)
	}
	return tb, nil
}

// WriteDataset renders ds in gnuplot format to w.
func WriteDataset(ds *metrics.Dataset, w io.Writer) error { return ds.WriteGnuplot(w) }
