// Package stats provides the small statistical toolkit used to reduce
// multi-run simulation results: streaming moments (Welford), normal
// confidence intervals, quantiles, and per-index aggregation of
// repeated series.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator computes streaming count, mean and variance using
// Welford's algorithm. The zero value is ready to use.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add feeds one observation.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the number of observations.
func (a *Accumulator) N() int { return a.n }

// Mean returns the sample mean (0 for no observations).
func (a *Accumulator) Mean() float64 { return a.mean }

// Min returns the smallest observation (0 for none).
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest observation (0 for none).
func (a *Accumulator) Max() float64 { return a.max }

// Variance returns the unbiased sample variance.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// CI95 returns the half-width of the normal-approximation 95%
// confidence interval of the mean.
func (a *Accumulator) CI95() float64 {
	if a.n < 2 {
		return 0
	}
	return 1.96 * a.StdDev() / math.Sqrt(float64(a.n))
}

// String renders "mean ± ci95".
func (a *Accumulator) String() string {
	return fmt.Sprintf("%.3f ± %.3f", a.Mean(), a.CI95())
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation; it copies and sorts the input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Mean returns the arithmetic mean of xs (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Gini returns the Gini coefficient of the non-negative values xs, a
// standard measure of load imbalance (0 = perfectly even, ->1 =
// concentrated on one element).
func Gini(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var cum, total float64
	for i, x := range s {
		cum += x * float64(i+1)
		total += x
	}
	if total == 0 {
		return 0
	}
	n := float64(len(s))
	return (2*cum)/(n*total) - (n+1)/n
}

// Series aggregates repeated observations of a fixed-length series
// (one Accumulator per index), e.g. "percentage of satisfied requests
// at time unit t" across runs.
type Series struct {
	acc []Accumulator
}

// NewSeries returns a Series of the given length.
func NewSeries(n int) *Series {
	return &Series{acc: make([]Accumulator, n)}
}

// Len returns the series length.
func (s *Series) Len() int { return len(s.acc) }

// Add feeds one run's values (must match the series length).
func (s *Series) Add(values []float64) error {
	if len(values) != len(s.acc) {
		return fmt.Errorf("stats: series length %d, got %d values", len(s.acc), len(values))
	}
	for i, v := range values {
		s.acc[i].Add(v)
	}
	return nil
}

// At returns the accumulator for index i.
func (s *Series) At(i int) *Accumulator { return &s.acc[i] }

// Means returns the per-index means.
func (s *Series) Means() []float64 {
	out := make([]float64, len(s.acc))
	for i := range s.acc {
		out[i] = s.acc[i].Mean()
	}
	return out
}

// StdDevs returns the per-index standard deviations.
func (s *Series) StdDevs() []float64 {
	out := make([]float64, len(s.acc))
	for i := range s.acc {
		out[i] = s.acc[i].StdDev()
	}
	return out
}

// OverallMean returns the mean of the per-index means over [from,to)
// (a steady-state window average).
func (s *Series) OverallMean(from, to int) float64 {
	if from < 0 {
		from = 0
	}
	if to > len(s.acc) {
		to = len(s.acc)
	}
	if from >= to {
		return math.NaN()
	}
	sum := 0.0
	for i := from; i < to; i++ {
		sum += s.acc[i].Mean()
	}
	return sum / float64(to-from)
}
