package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	if a.N() != 0 || a.Mean() != 0 || a.Variance() != 0 || a.CI95() != 0 {
		t.Fatalf("zero value must report zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Fatalf("N = %d", a.N())
	}
	if !almost(a.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v", a.Mean())
	}
	// Population variance is 4; sample variance = 32/7.
	if !almost(a.Variance(), 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v", a.Variance())
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", a.Min(), a.Max())
	}
	if a.CI95() <= 0 {
		t.Fatalf("CI95 must be positive with n>1")
	}
	if a.String() == "" {
		t.Fatalf("empty String()")
	}
}

func TestAccumulatorSingleObservation(t *testing.T) {
	var a Accumulator
	a.Add(3.5)
	if a.Mean() != 3.5 || a.Variance() != 0 || a.StdDev() != 0 {
		t.Fatalf("single observation stats wrong")
	}
	if a.Min() != 3.5 || a.Max() != 3.5 {
		t.Fatalf("single observation min/max wrong")
	}
}

func TestPropWelfordMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(50)
		xs := make([]float64, n)
		var a Accumulator
		for i := range xs {
			xs[i] = r.NormFloat64() * 100
			a.Add(xs[i])
		}
		mean := Mean(xs)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		naiveVar := ss / float64(n-1)
		return almost(a.Mean(), mean, 1e-6) && almost(a.Variance(), naiveVar, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 5 {
		t.Fatalf("extreme quantiles wrong")
	}
	if !almost(Quantile(xs, 0.5), 3, 1e-12) {
		t.Fatalf("median = %v", Quantile(xs, 0.5))
	}
	if !almost(Quantile(xs, 0.25), 2, 1e-12) {
		t.Fatalf("q25 = %v", Quantile(xs, 0.25))
	}
	if !almost(Quantile([]float64{1, 2}, 0.5), 1.5, 1e-12) {
		t.Fatalf("interpolated median wrong")
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatalf("empty quantile must be NaN")
	}
	// Input must not be mutated.
	ys := []float64{3, 1, 2}
	Quantile(ys, 0.5)
	if ys[0] != 3 {
		t.Fatalf("Quantile mutated its input")
	}
}

func TestMean(t *testing.T) {
	if !almost(Mean([]float64{1, 2, 3}), 2, 1e-12) {
		t.Fatalf("Mean wrong")
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatalf("empty mean must be NaN")
	}
}

func TestGini(t *testing.T) {
	if g := Gini([]float64{5, 5, 5, 5}); !almost(g, 0, 1e-12) {
		t.Fatalf("uniform Gini = %v", g)
	}
	g := Gini([]float64{0, 0, 0, 100})
	if g < 0.7 {
		t.Fatalf("concentrated Gini = %v, want high", g)
	}
	if Gini(nil) != 0 || Gini([]float64{0, 0}) != 0 {
		t.Fatalf("degenerate Gini must be 0")
	}
	// Scale invariance.
	a := Gini([]float64{1, 2, 3, 4})
	b := Gini([]float64{10, 20, 30, 40})
	if !almost(a, b, 1e-12) {
		t.Fatalf("Gini must be scale invariant: %v vs %v", a, b)
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries(3)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if err := s.Add([]float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add([]float64{3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add([]float64{1, 2}); err == nil {
		t.Fatalf("length mismatch must error")
	}
	means := s.Means()
	want := []float64{2, 3, 4}
	for i := range want {
		if !almost(means[i], want[i], 1e-12) {
			t.Fatalf("means = %v", means)
		}
	}
	if s.At(0).N() != 2 {
		t.Fatalf("At(0).N = %d", s.At(0).N())
	}
	sds := s.StdDevs()
	if !almost(sds[0], math.Sqrt2, 1e-9) {
		t.Fatalf("stddev[0] = %v", sds[0])
	}
}

func TestSeriesOverallMean(t *testing.T) {
	s := NewSeries(4)
	_ = s.Add([]float64{0, 10, 20, 30})
	if m := s.OverallMean(1, 3); !almost(m, 15, 1e-12) {
		t.Fatalf("OverallMean = %v", m)
	}
	if m := s.OverallMean(-5, 99); !almost(m, 15, 1e-12) {
		t.Fatalf("clamped OverallMean = %v", m)
	}
	if !math.IsNaN(s.OverallMean(3, 3)) {
		t.Fatalf("empty window must be NaN")
	}
}
