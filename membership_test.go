package dlpt

// Failure-injection and differential tests of the membership
// subsystem: an identical scripted join/leave/crash/recover workload
// must leave byte-identical catalogues on all three engines, a crash
// without recovery must degrade the tree, and recovery must restore
// every replicated key while MembershipStats counts the losses.

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"dlpt/internal/keys"
	"dlpt/internal/workload"
)

// busiestPeer returns the id of the peer hosting the most tree nodes
// (ties to the lowest id), i.e. a crash victim guaranteed to degrade
// the tree.
func busiestPeer(t *testing.T, reg *Registry) string {
	t.Helper()
	infos, err := reg.Peers(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	best := -1
	id := ""
	for _, p := range infos {
		if p.Nodes > best {
			best, id = p.Nodes, p.ID
		}
	}
	if best < 1 {
		t.Fatal("no peer hosts any node")
	}
	return id
}

// catalogue serializes the full observable catalogue: Services plus
// Snapshot keys.
func catalogue(t *testing.T, reg *Registry) string {
	t.Helper()
	ctx := context.Background()
	svcs, err := reg.Services(ctx)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := reg.Engine().Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "services %v\n", svcs)
	fmt.Fprintf(&b, "snapshot %v\n", snap.Keys())
	return b.String()
}

// runMembershipWorkload drives the scripted membership workload on
// one engine and returns the engine-independent transcript.
func runMembershipWorkload(t *testing.T, kind EngineKind) string {
	t.Helper()
	ctx := context.Background()
	reg := newRegistry(t, 8, WithSeed(17), WithAlphabet(keys.LowerAlnum), WithEngine(kind))
	var b strings.Builder

	// Phase 1: seed the catalogue and grow with heterogeneous
	// capacities (AddPeerWithCapacity satellite).
	corpus := workload.GridCorpus(48)
	batch := make([]Registration, len(corpus))
	for i, k := range corpus {
		batch[i] = Registration{Name: string(k), Endpoint: "ep://" + string(k)}
	}
	if err := reg.RegisterBatch(ctx, batch); err != nil {
		t.Fatal(err)
	}
	var added []string
	for _, capa := range []int{64, 256, 1024} {
		id, err := reg.AddPeerWithCapacity(ctx, capa)
		if err != nil {
			t.Fatal(err)
		}
		added = append(added, id)
	}
	infos, err := reg.Peers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	caps := make(map[int]int)
	for _, p := range infos {
		caps[p.Capacity]++
	}
	fmt.Fprintf(&b, "phase1 peers=%d cap64=%d cap256=%d cap1024=%d\n",
		len(infos), caps[64], caps[256], caps[1024])

	// Phase 2: graceful departures hand nodes off; the catalogue must
	// not change.
	for _, id := range added[:2] {
		if err := reg.RemovePeer(ctx, id); err != nil {
			t.Fatalf("%s: remove %q: %v", kind, id, err)
		}
	}
	if err := reg.Validate(ctx); err != nil {
		t.Fatalf("%s: validate after leaves: %v", kind, err)
	}
	fmt.Fprintf(&b, "phase2 peers=%d nodes=%d\n%s", reg.NumPeers(), reg.NumNodes(),
		catalogue(t, reg))

	// Phase 3: replicate, crash the busiest peer, recover. Everything
	// was replicated, so nothing may be lost.
	replicated, err := reg.Replicate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&b, "phase3 replicated=%d\n", replicated)
	preNodes := reg.NumNodes()
	victim := busiestPeer(t, reg)
	if err := reg.CrashPeer(ctx, victim); err != nil {
		t.Fatal(err)
	}
	if got := reg.NumNodes(); got >= preNodes {
		t.Fatalf("%s: crash did not degrade: %d nodes, was %d", kind, got, preNodes)
	}
	rep, err := reg.Recover(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Restored == 0 {
		t.Fatalf("%s: recovery restored nothing", kind)
	}
	fmt.Fprintf(&b, "phase3 lost=%d nodes=%d\n%s", rep.Lost, reg.NumNodes(),
		catalogue(t, reg))
	if err := reg.Validate(ctx); err != nil {
		t.Fatalf("%s: validate after recovery: %v", kind, err)
	}

	// Phase 4: declare keys after the replication tick, crash again
	// without a fresh Replicate: the stale snapshots must bring every
	// phase-1 key back, while unreplicated keys may be lost — and the
	// stats must count them.
	extra := []string{"zzchurn0", "zzchurn1", "zzchurn2", "zzchurn3",
		"zzchurn4", "zzchurn5", "zzchurn6", "zzchurn7"}
	for _, k := range extra {
		if err := reg.Register(ctx, k, "ep://"+k); err != nil {
			t.Fatal(err)
		}
	}
	victim = busiestPeer(t, reg)
	if err := reg.CrashPeer(ctx, victim); err != nil {
		t.Fatal(err)
	}
	rep, err = reg.Recover(ctx)
	if err != nil {
		t.Fatal(err)
	}
	svcs, err := reg.Services(ctx)
	if err != nil {
		t.Fatal(err)
	}
	have := make(map[string]bool, len(svcs))
	for _, s := range svcs {
		have[s] = true
	}
	for _, k := range corpus {
		if !have[string(k)] {
			t.Fatalf("%s: replicated key %q not restored", kind, k)
		}
	}
	missing := 0
	for _, k := range extra {
		if !have[k] {
			missing++
		}
	}
	if missing > rep.Lost {
		t.Fatalf("%s: %d unreplicated keys missing but only %d nodes counted lost",
			kind, missing, rep.Lost)
	}
	ms, err := reg.MembershipStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ms.LostNodes < missing {
		t.Fatalf("%s: stats count %d lost, at least %d keys missing", kind, ms.LostNodes, missing)
	}
	// Re-register the survivors' complement so every engine converges
	// to the same catalogue again.
	for _, k := range extra {
		if !have[k] {
			if err := reg.Register(ctx, k, "ep://"+k); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := reg.Validate(ctx); err != nil {
		t.Fatalf("%s: validate after re-register: %v", kind, err)
	}
	fmt.Fprintf(&b, "phase4 nodes=%d\n%s", reg.NumNodes(), catalogue(t, reg))

	// Phase 5: balancing rounds must not change the catalogue. The
	// EqualLoad round applies real boundary moves (it is
	// capacity-blind), driving the mailbox/address rewiring of the
	// concurrent engines.
	if err := reg.Tick(ctx); err != nil {
		t.Fatal(err)
	}
	for _, strategy := range []string{"MLT", "EqualLoad"} {
		if _, err := reg.Balance(ctx, strategy); err != nil {
			t.Fatal(err)
		}
		if err := reg.Validate(ctx); err != nil {
			t.Fatalf("%s: validate after %s balance: %v", kind, strategy, err)
		}
	}
	fmt.Fprintf(&b, "phase5 nodes=%d\n%s", reg.NumNodes(), catalogue(t, reg))

	// Engine-independent lifecycle counters close the transcript.
	ms, err = reg.MembershipStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&b, "stats joins=%d leaves=%d crashes=%d recoveries=%d\n",
		ms.Joins, ms.Leaves, ms.Crashes, ms.Recoveries)
	return b.String()
}

// TestMembershipDifferential requires the three engines to answer the
// identical scripted membership workload with byte-identical
// catalogues and counters.
func TestMembershipDifferential(t *testing.T) {
	transcripts := make(map[EngineKind]string, len(engineKinds))
	for _, kind := range engineKinds {
		transcripts[kind] = runMembershipWorkload(t, kind)
	}
	ref := transcripts[EngineLocal]
	if ref == "" {
		t.Fatal("empty reference transcript")
	}
	for _, kind := range engineKinds[1:] {
		if transcripts[kind] != ref {
			t.Errorf("engine %s diverges from local:\n%s", kind,
				firstDiff(ref, transcripts[kind]))
		}
	}
}

// TestRemovePeerLastHostingErrors pins the graceful-leave guard: the
// last peer cannot leave while hosting tree nodes.
func TestRemovePeerLastHostingErrors(t *testing.T) {
	forEachEngine(t, func(t *testing.T, kind EngineKind) {
		ctx := context.Background()
		reg := newRegistry(t, 1, WithSeed(5), WithEngine(kind))
		if err := reg.Register(ctx, "svc", "ep"); err != nil {
			t.Fatal(err)
		}
		infos, err := reg.Peers(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if err := reg.RemovePeer(ctx, infos[0].ID); err == nil {
			t.Fatal("last hosting peer left without error")
		}
		if err := reg.CrashPeer(ctx, infos[0].ID); err == nil {
			t.Fatal("last peer crashed without error")
		}
		if err := reg.RemovePeer(ctx, "nosuchpeer"); err == nil {
			t.Fatal("unknown peer removed without error")
		}
	})
}

// TestRemovePeerDuringDiscoveries removes peers while discoveries
// stream through the concurrent engines: every discovery must still
// complete (the live engine drains departed mailboxes, the TCP engine
// re-resolves hosts per hop).
func TestRemovePeerDuringDiscoveries(t *testing.T) {
	for _, kind := range []EngineKind{EngineLive, EngineTCP} {
		t.Run(string(kind), func(t *testing.T) {
			ctx := context.Background()
			reg := newRegistry(t, 10, WithSeed(23), WithAlphabet(keys.LowerAlnum), WithEngine(kind))
			corpus := workload.GridCorpus(60)
			batch := make([]Registration, len(corpus))
			for i, k := range corpus {
				batch[i] = Registration{Name: string(k), Endpoint: "ep"}
			}
			if err := reg.RegisterBatch(ctx, batch); err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			stop := make(chan struct{})
			errc := make(chan error, 4)
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						if _, _, err := reg.Discover(ctx, string(corpus[(i+g)%len(corpus)])); err != nil {
							errc <- fmt.Errorf("discover: %w", err)
							return
						}
					}
				}(g)
			}
			for i := 0; i < 4; i++ {
				id, err := reg.AddPeerWithCapacity(ctx, 100)
				if err != nil {
					t.Fatal(err)
				}
				if err := reg.RemovePeer(ctx, id); err != nil {
					t.Fatal(err)
				}
			}
			close(stop)
			wg.Wait()
			select {
			case err := <-errc:
				// The TCP engine may surface a dial error for a hop
				// racing the closing listener; the live engine must
				// not fail at all.
				if kind == EngineLive {
					t.Fatal(err)
				}
				t.Logf("tolerated racing error: %v", err)
			default:
			}
			if err := reg.Validate(ctx); err != nil {
				t.Fatal(err)
			}
		})
	}
}
