package dlpt

// Differential and failure-injection tests of the persistence layer:
// a scripted durable workload followed by a whole-overlay crash and a
// cold Restart must yield byte-identical post-recovery catalogues on
// all three engines, the last-peer case included, and replica
// re-homing traffic must be visible under churn.

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"dlpt/internal/keys"
	"dlpt/internal/workload"
)

// runColdRestartWorkload drives the scripted durable workload on one
// engine, writing snapshots with the named catalogue codec ("" means
// the default), kills every peer, restarts from disk and returns the
// engine-independent transcript. The restart never names a codec:
// recovery must dispatch on the version byte alone, so the transcript
// is also codec-independent.
func runColdRestartWorkload(t *testing.T, kind EngineKind, codec string) string {
	t.Helper()
	ctx := context.Background()
	dir := t.TempDir()
	opts := []Option{WithSeed(29), WithAlphabet(keys.LowerAlnum),
		WithEngine(kind), WithPersistence(dir)}
	if codec != "" {
		opts = append(opts, WithSnapshotCodec(codec))
	}
	reg, err := New(6, opts...)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder

	// Epoch 1: a replicated corpus.
	corpus := workload.GridCorpus(40)
	batch := make([]Registration, len(corpus))
	for i, k := range corpus {
		batch[i] = Registration{Name: string(k), Endpoint: "ep://" + string(k)}
	}
	if err := reg.RegisterBatch(ctx, batch); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Replicate(ctx); err != nil {
		t.Fatal(err)
	}
	// Epoch 2: more data, another snapshot, then topology churn and
	// journaled mutations past the final snapshot.
	for i := 0; i < 6; i++ {
		if err := reg.Register(ctx, fmt.Sprintf("zzdurable%d", i), "ep"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := reg.Replicate(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.AddPeerWithCapacity(ctx, 512); err != nil {
		t.Fatal(err)
	}
	for i := 6; i < 9; i++ { // journal-only: declared after the final snapshot
		if err := reg.Register(ctx, fmt.Sprintf("zzdurable%d", i), "ep"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := reg.Unregister(ctx, string(corpus[0]), "ep://"+string(corpus[0])); err != nil {
		t.Fatal(err)
	}
	pre := catalogue(t, reg)

	// Kill every peer: crash all the removable ones without recovery,
	// then die abruptly.
	for reg.NumPeers() > 1 {
		infos, err := reg.Peers(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if err := reg.CrashPeer(ctx, infos[0].ID); err != nil {
			t.Fatal(err)
		}
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	// Cold restart from the persistence directory alone. The journal
	// holds every mutation since the final snapshot, so the restored
	// catalogue matches the pre-crash one exactly.
	restarted, err := Restart(dir, WithSeed(29), WithAlphabet(keys.LowerAlnum), WithEngine(kind))
	if err != nil {
		t.Fatalf("%s: restart: %v", kind, err)
	}
	defer restarted.Close()
	if err := restarted.Validate(ctx); err != nil {
		t.Fatalf("%s: restored overlay invalid: %v", kind, err)
	}
	post := catalogue(t, restarted)
	if post != pre {
		t.Fatalf("%s: cold restart changed the catalogue:\n%s", kind, firstDiff(pre, post))
	}
	fmt.Fprintf(&b, "peers=%d nodes=%d\n%s", restarted.NumPeers(), restarted.NumNodes(), post)

	// The restored overlay is a normal overlay: it keeps working and
	// keeps persisting.
	if err := restarted.Register(ctx, "zzafterrestart", "ep"); err != nil {
		t.Fatal(err)
	}
	if _, err := restarted.Replicate(ctx); err != nil {
		t.Fatal(err)
	}
	svc, ok, err := restarted.Discover(ctx, "zzafterrestart")
	if err != nil || !ok {
		t.Fatalf("%s: discover after restart: ok=%v err=%v", kind, ok, err)
	}
	fmt.Fprintf(&b, "post-restart %s %v\n", svc.Name, svc.Endpoints)
	return b.String()
}

// TestColdRestartDifferential requires every engine × snapshot-codec
// combination to come back from a whole-overlay crash with
// byte-identical catalogues: the three engines must agree with each
// other, and snapshots written with the legacy verbose codec must
// restore exactly what the succinct default restores — the wire
// format is an encoding choice, never a semantic one.
func TestColdRestartDifferential(t *testing.T) {
	codecs := []string{"louds", "legacy"}
	ref := runColdRestartWorkload(t, EngineLocal, codecs[0])
	if ref == "" {
		t.Fatal("empty reference transcript")
	}
	for _, kind := range engineKinds {
		for _, codec := range codecs {
			if kind == EngineLocal && codec == codecs[0] {
				continue
			}
			got := runColdRestartWorkload(t, kind, codec)
			if got != ref {
				t.Errorf("engine %s codec %s diverges from local/%s:\n%s",
					kind, codec, codecs[0], firstDiff(ref, got))
			}
		}
	}
}

// TestRestartLastPeer pins the last-peer case: a single-peer durable
// overlay dies abruptly and restarts from disk with its whole
// catalogue.
func TestRestartLastPeer(t *testing.T) {
	forEachEngine(t, func(t *testing.T, kind EngineKind) {
		ctx := context.Background()
		dir := t.TempDir()
		reg, err := New(1, WithSeed(31), WithAlphabet(keys.LowerAlnum),
			WithEngine(kind), WithPersistence(dir))
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []string{"dgemm", "dgemv", "saxpy"} {
			if err := reg.Register(ctx, k, "ep://"+k); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := reg.Replicate(ctx); err != nil {
			t.Fatal(err)
		}
		if err := reg.Register(ctx, "journaled", "ep"); err != nil {
			t.Fatal(err)
		}
		if err := reg.Close(); err != nil { // the last peer dies
			t.Fatal(err)
		}

		restarted, err := Restart(dir, WithSeed(31), WithAlphabet(keys.LowerAlnum), WithEngine(kind))
		if err != nil {
			t.Fatal(err)
		}
		defer restarted.Close()
		if err := restarted.Validate(ctx); err != nil {
			t.Fatal(err)
		}
		if got := restarted.NumPeers(); got != 1 {
			t.Fatalf("restored %d peers, want 1", got)
		}
		svcs, err := restarted.Services(ctx)
		if err != nil {
			t.Fatal(err)
		}
		want := "[dgemm dgemv journaled saxpy]"
		if fmt.Sprint(svcs) != want {
			t.Fatalf("restored services %v, want %s", svcs, want)
		}
	})
}

// TestRestartBeforeFirstReplicate pins the construction-time epoch: a
// durable overlay snapshots its fresh ring at construction, so a
// crash before the first explicit Replicate still restores the ring
// plus the journaled mutations — and starting a fresh overlay on a
// previous run's directory cannot mix the two runs' catalogues.
func TestRestartBeforeFirstReplicate(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	reg, err := New(2, WithSeed(33), WithEngine(EngineLocal), WithPersistence(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(ctx, "svc", "ep"); err != nil {
		t.Fatal(err)
	}
	reg.Close() // journaled but never explicitly snapshotted
	restarted, err := Restart(dir, WithEngine(EngineLocal))
	if err != nil {
		t.Fatal(err)
	}
	svcs, err := restarted.Services(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(svcs) != "[svc]" {
		t.Fatalf("restored services %v, want [svc]", svcs)
	}
	restarted.Close()

	// A fresh overlay on the same directory starts its own epoch: a
	// crash before its first Replicate must restore only the fresh
	// run's state, never a chimera with the old run's keys.
	reg2, err := New(2, WithSeed(35), WithEngine(EngineLocal), WithPersistence(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := reg2.Register(ctx, "otherkey", "ep"); err != nil {
		t.Fatal(err)
	}
	reg2.Close()
	restarted2, err := Restart(dir, WithEngine(EngineLocal))
	if err != nil {
		t.Fatal(err)
	}
	defer restarted2.Close()
	svcs, err = restarted2.Services(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(svcs) != "[otherkey]" {
		t.Fatalf("restored services %v, want [otherkey]", svcs)
	}

	// An untouched directory has nothing to restore.
	if _, err := Restart(t.TempDir(), WithEngine(EngineLocal)); err == nil {
		t.Fatal("restart from an empty directory succeeded")
	}
}

// TestRehomingTrafficUnderChurn requires topology changes on every
// engine to produce nonzero replica-transfer traffic, reported
// through MembershipStats.
func TestRehomingTrafficUnderChurn(t *testing.T) {
	forEachEngine(t, func(t *testing.T, kind EngineKind) {
		ctx := context.Background()
		reg := newRegistry(t, 6, WithSeed(37), WithAlphabet(keys.LowerAlnum), WithEngine(kind))
		corpus := workload.GridCorpus(80)
		batch := make([]Registration, len(corpus))
		for i, k := range corpus {
			batch[i] = Registration{Name: string(k), Endpoint: "ep"}
		}
		if err := reg.RegisterBatch(ctx, batch); err != nil {
			t.Fatal(err)
		}
		if _, err := reg.Replicate(ctx); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			id, err := reg.AddPeerWithCapacity(ctx, 256)
			if err != nil {
				t.Fatal(err)
			}
			if err := reg.RemovePeer(ctx, id); err != nil {
				t.Fatal(err)
			}
		}
		ms, err := reg.MembershipStats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if ms.ReplicaTransferMsgs == 0 || ms.ReplicaTransferredNodes == 0 {
			t.Fatalf("churn produced no replica transfer traffic: %+v", ms)
		}
		if err := reg.Validate(ctx); err != nil {
			t.Fatal(err)
		}
	})
}

// TestRecoverReportsLostKeys requires the engine-level loss report to
// name exactly the service keys that went missing.
func TestRecoverReportsLostKeys(t *testing.T) {
	forEachEngine(t, func(t *testing.T, kind EngineKind) {
		ctx := context.Background()
		reg := newRegistry(t, 6, WithSeed(41), WithAlphabet(keys.LowerAlnum), WithEngine(kind))
		corpus := workload.GridCorpus(50)
		for _, k := range corpus {
			if err := reg.Register(ctx, string(k), "ep"); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := reg.Replicate(ctx); err != nil {
			t.Fatal(err)
		}
		extra := []string{"zzloss0", "zzloss1", "zzloss2", "zzloss3"}
		for _, k := range extra {
			if err := reg.Register(ctx, k, "ep"); err != nil {
				t.Fatal(err)
			}
		}
		if err := reg.CrashPeer(ctx, busiestPeer(t, reg)); err != nil {
			t.Fatal(err)
		}
		rep, err := reg.Recover(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Lost != len(rep.LostKeys) {
			t.Fatalf("Lost=%d but %d LostKeys", rep.Lost, len(rep.LostKeys))
		}
		lost := make(map[string]bool, len(rep.LostKeys))
		for _, k := range rep.LostKeys {
			lost[k] = true
		}
		svcs, err := reg.Services(ctx)
		if err != nil {
			t.Fatal(err)
		}
		have := make(map[string]bool, len(svcs))
		for _, s := range svcs {
			have[s] = true
		}
		for _, k := range extra {
			if have[k] == lost[k] {
				t.Fatalf("%s: key %q present=%v lost=%v (report %v)",
					kind, k, have[k], lost[k], rep.LostKeys)
			}
		}
		for _, k := range corpus {
			if !have[string(k)] {
				t.Fatalf("replicated key %q missing", k)
			}
		}
	})
}

// TestRestartDirectory pins the durable Directory path: after a
// whole-overlay crash, RestartDirectory rebuilds the overlay from
// disk and rehydrates the per-resource attribute descriptions, so
// Describe, conjunctive queries, withdrawal and validation all work
// on the restored directory.
func TestRestartDirectory(t *testing.T) {
	forEachEngine(t, func(t *testing.T, kind EngineKind) {
		ctx := context.Background()
		dir := t.TempDir()
		d, err := NewDirectory(4, WithSeed(43), WithEngine(kind), WithPersistence(dir))
		if err != nil {
			t.Fatal(err)
		}
		resources := []Resource{
			{ID: "lyon-01", Attributes: map[string]string{"cpu": "x86_64", "mem": "256"}},
			{ID: "lyon-02", Attributes: map[string]string{"cpu": "arm64", "mem": "128"}},
			{ID: "nancy-01", Attributes: map[string]string{"cpu": "x86_64", "mem": "064"}},
		}
		for _, res := range resources {
			if err := d.RegisterResource(ctx, res); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := d.Replicate(ctx); err != nil {
			t.Fatal(err)
		}
		if err := d.Close(); err != nil { // every peer dies
			t.Fatal(err)
		}

		restored, err := RestartDirectory(dir, WithSeed(43), WithEngine(kind))
		if err != nil {
			t.Fatal(err)
		}
		defer restored.Close()
		if err := restored.Validate(ctx); err != nil {
			t.Fatalf("%s: restored directory invalid: %v", kind, err)
		}
		if got := restored.NumResources(); got != len(resources) {
			t.Fatalf("%s: rehydrated %d resources, want %d", kind, got, len(resources))
		}
		attrs, ok := restored.Describe("lyon-02")
		if !ok || attrs["cpu"] != "arm64" || attrs["mem"] != "128" {
			t.Fatalf("%s: describe lyon-02 = %v ok=%v", kind, attrs, ok)
		}
		ids, _, err := restored.Find(ctx, Where{Attr: "cpu", Equals: "x86_64"})
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(ids) != "[lyon-01 nancy-01]" {
			t.Fatalf("%s: find cpu=x86_64 = %v", kind, ids)
		}
		if ok, err := restored.UnregisterResource(ctx, "nancy-01"); err != nil || !ok {
			t.Fatalf("%s: unregister on restored directory: ok=%v err=%v", kind, ok, err)
		}
		if err := restored.Validate(ctx); err != nil {
			t.Fatal(err)
		}
	})
}
